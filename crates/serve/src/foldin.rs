//! Online fold-in: assigning new objects under a frozen model.
//!
//! Given a fitted model, a new object arriving with links into the network
//! and an *arbitrary subset* of its attributes observed (including none —
//! the paper's incomplete-attribute regime continues at serving time, cf.
//! Hou et al. 2018 and Zhao et al. 2017 on incomplete attributed networks),
//! its membership row is the fixed point of the same Eq. 10 operator the
//! EM engine iterates — with `β`, `γ`, and every *existing* object's `Θ`
//! row frozen:
//!
//! `θ_v ∝ Σ_{e=⟨v,u⟩} γ(φ(e)) w(e) θ_u + Σ_X Σ_x p(z_{v,x} | θ_v, β)`,
//! floored, normalized, and `ε`-smoothed exactly as during the fit.
//!
//! The link term is constant across fold-in iterations (neighbors are
//! frozen), so it is accumulated once; only the attribute responsibilities
//! are re-evaluated, through the *same* cached-log kernel helpers the EM
//! hot path uses ([`genclus_core::em::categorical_responsibility_mass`] /
//! [`genclus_core::em::gaussian_responsibility_mass`] with a no-op
//! sufficient-statistics sink). Consequence: folding a training-set object
//! in with its own links and observations reproduces its fitted row to
//! convergence tolerance — a property test pins this at ≤ 1e-9.
//!
//! Objects with no observations converge in a single step (the update is
//! then constant); objects with observations iterate the one-row fixed
//! point, typically a handful of steps.

use crate::error::ServeError;
use genclus_core::em::{categorical_responsibility_mass, gaussian_responsibility_mass};
use genclus_core::{ClusterComponents, GenClusModel};
use genclus_hin::{AttributeId, AttributeKind, HinGraph, ObjectId, ObjectTypeId, RelationId};
use genclus_stats::simplex::normalize_floored;

/// A new object's connectivity and (possibly empty) observations, as
/// submitted to [`FoldInEngine::assign`].
#[derive(Debug, Clone, Default)]
pub struct FoldInRequest {
    /// Out-links `(relation, target, weight)`; targets are existing
    /// objects of the graph, or — when the engine was given staged rows
    /// via [`FoldInEngine::with_staged`] — objects staged beyond it
    /// (ids `graph.n_objects()..`).
    pub links: Vec<(RelationId, ObjectId, f64)>,
    /// Categorical observations per attribute: `(attribute, term-count
    /// bag)`.
    pub terms: Vec<(AttributeId, Vec<(u32, f64)>)>,
    /// Numerical observations per attribute: `(attribute, values)`.
    pub values: Vec<(AttributeId, Vec<f64>)>,
}

/// Result of folding one object in.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInResult {
    /// The inferred membership row (simplex).
    pub theta: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
    /// Whether the iteration hit the tolerance before the cap.
    pub converged: bool,
}

/// Iteration controls for the one-row fixed point.
#[derive(Debug, Clone, Copy)]
pub struct FoldInOptions {
    /// Iteration cap (objects without observations always use 1).
    pub max_iters: usize,
    /// Stop when the max-abs row change falls below this.
    pub tol: f64,
}

impl Default for FoldInOptions {
    fn default() -> Self {
        Self {
            max_iters: 500,
            tol: 1e-12,
        }
    }
}

/// Folds new objects into a frozen `(model, graph)` pair.
pub struct FoldInEngine<'a> {
    model: &'a GenClusModel,
    graph: &'a HinGraph,
    opts: FoldInOptions,
    /// `Θ` rows of objects staged beyond the graph (refresh-window
    /// commits): row `i` belongs to object `graph.n_objects() + i`.
    staged_rows: &'a [Vec<f64>],
    /// Types of the staged objects, parallel to `staged_rows`.
    staged_types: &'a [ObjectTypeId],
}

impl<'a> FoldInEngine<'a> {
    /// Binds a fold-in engine to a fitted model and its network.
    pub fn new(model: &'a GenClusModel, graph: &'a HinGraph) -> Self {
        Self {
            model,
            graph,
            opts: FoldInOptions::default(),
            staged_rows: &[],
            staged_types: &[],
        }
    }

    /// Overrides the iteration controls.
    pub fn with_options(mut self, opts: FoldInOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Makes objects *staged* beyond the graph addressable as link
    /// targets: `rows[i]` / `types[i]` describe object
    /// `graph.n_objects() + i`. The refresh layer passes its pending
    /// fold-in rows here so a commit can link to an earlier commit of the
    /// same refresh window — the link term then reads the target's staged
    /// `Θ` row (frozen as of *its* fold-in), exactly as it reads fitted
    /// rows for snapshot objects.
    ///
    /// # Panics
    /// Panics if `rows` and `types` have different lengths.
    pub fn with_staged(mut self, rows: &'a [Vec<f64>], types: &'a [ObjectTypeId]) -> Self {
        assert_eq!(
            rows.len(),
            types.len(),
            "staged rows and types must be parallel"
        );
        self.staged_rows = rows;
        self.staged_types = types;
        self
    }

    /// Objects addressable as link targets: graph plus staged.
    fn n_addressable(&self) -> usize {
        self.graph.n_objects() + self.staged_rows.len()
    }

    /// Type of an addressable object (graph or staged range).
    fn type_of(&self, v: ObjectId) -> ObjectTypeId {
        if v.index() < self.graph.n_objects() {
            self.graph.object_type(v)
        } else {
            self.staged_types[v.index() - self.graph.n_objects()]
        }
    }

    /// Membership row of an addressable object: the fitted `Θ` row for
    /// graph objects, the staged fold-in row for staged ones.
    fn row_of(&self, v: ObjectId) -> &[f64] {
        if v.index() < self.graph.n_objects() {
            self.model.theta.row(v.index())
        } else {
            &self.staged_rows[v.index() - self.graph.n_objects()]
        }
    }

    /// Number of clusters of the underlying model.
    pub fn n_clusters(&self) -> usize {
        self.model.n_clusters()
    }

    /// Validates a request against the schema and the model's attribute
    /// subset. Serving input is untrusted: unknown ids, kind confusion,
    /// out-of-vocabulary terms, non-positive weights, and attributes
    /// outside the clustering purpose are all rejected with specific
    /// errors rather than panicking in the kernel.
    pub fn validate(&self, req: &FoldInRequest) -> Result<(), ServeError> {
        let schema = self.graph.schema();
        for &(r, target, w) in &req.links {
            if r.index() >= schema.n_relations() {
                return Err(genclus_hin::HinError::UnknownRelation(r).into());
            }
            if target.index() >= self.n_addressable() {
                return Err(genclus_hin::HinError::UnknownObject(target).into());
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(genclus_hin::HinError::InvalidWeight { weight: w }.into());
            }
            let def = schema.relation(r);
            if self.type_of(target) != def.target {
                return Err(ServeError::BadRequest(format!(
                    "link target {target} has the wrong type for relation {:?}",
                    def.name
                )));
            }
        }
        // One entry per attribute: the fixed-point loop looks each
        // attribute's observations up by id, so a duplicate entry would be
        // silently ignored — reject it instead.
        for (i, (a, _)) in req.terms.iter().enumerate() {
            if req.terms[..i].iter().any(|(b, _)| b == a) {
                return Err(ServeError::BadRequest(format!(
                    "attribute {:?} appears more than once in \"terms\"",
                    schema.attribute(*a).name
                )));
            }
        }
        for (i, (a, _)) in req.values.iter().enumerate() {
            if req.values[..i].iter().any(|(b, _)| b == a) {
                return Err(ServeError::BadRequest(format!(
                    "attribute {:?} appears more than once in \"values\"",
                    schema.attribute(*a).name
                )));
            }
        }
        let check_attr = |a: AttributeId| -> Result<(), ServeError> {
            if a.index() >= schema.n_attributes() {
                return Err(genclus_hin::HinError::UnknownAttribute(a).into());
            }
            if !self.model.attributes.contains(&a) {
                return Err(ServeError::BadRequest(format!(
                    "attribute {:?} is not part of this model's clustering purpose",
                    schema.attribute(a).name
                )));
            }
            Ok(())
        };
        for (a, bag) in &req.terms {
            check_attr(*a)?;
            match schema.attribute(*a).kind {
                AttributeKind::Categorical { vocab_size } => {
                    for &(term, count) in bag {
                        if (term as usize) >= vocab_size {
                            return Err(genclus_hin::HinError::TermOutOfRange {
                                attribute: *a,
                                term: term as usize,
                                vocab_size,
                            }
                            .into());
                        }
                        if !(count > 0.0 && count.is_finite()) {
                            return Err(genclus_hin::HinError::NonFiniteObservation {
                                attribute: *a,
                            }
                            .into());
                        }
                    }
                }
                AttributeKind::Numerical => {
                    return Err(genclus_hin::HinError::AttributeKindMismatch {
                        attribute: *a,
                        expected: "term-count",
                    }
                    .into());
                }
            }
        }
        for (a, values) in &req.values {
            check_attr(*a)?;
            if !matches!(schema.attribute(*a).kind, AttributeKind::Numerical) {
                return Err(genclus_hin::HinError::AttributeKindMismatch {
                    attribute: *a,
                    expected: "numerical",
                }
                .into());
            }
            if values.iter().any(|x| !x.is_finite()) {
                return Err(genclus_hin::HinError::NonFiniteObservation { attribute: *a }.into());
            }
        }
        Ok(())
    }

    /// Infers the membership row of one new object.
    pub fn assign(&self, req: &FoldInRequest) -> Result<FoldInResult, ServeError> {
        self.validate(req)?;
        Ok(self.assign_unchecked(req))
    }

    /// The fixed-point iteration, assuming `req` already validated.
    fn assign_unchecked(&self, req: &FoldInRequest) -> FoldInResult {
        let k = self.model.n_clusters();
        let smoothing = self.model.theta_smoothing;

        // Link term of Eq. 10 — constant under frozen neighbor rows, so
        // accumulated once, grouped by relation like the EM kernel (one γ
        // fetch per relation, and the same left-to-right addition order for
        // links of one relation). A staged target contributes its staged
        // fold-in row (see [`Self::with_staged`]).
        let mut base = vec![0.0f64; k];
        for &(r, target, w) in &req.links {
            let g = self.model.gamma[r.index()];
            if g == 0.0 {
                continue;
            }
            let gw = g * w;
            let tu = self.row_of(target);
            for (b, &t) in base.iter_mut().zip(tu) {
                *b += gw * t;
            }
        }

        // Observation lists in the model's attribute order (the same order
        // the EM step sweeps attributes in).
        type AttrObs<'o> = (&'o ClusterComponents, &'o [(u32, f64)], &'o [f64]);
        let per_attr: Vec<AttrObs<'_>> = self
            .model
            .attributes
            .iter()
            .zip(&self.model.components)
            .map(|(&a, comp)| {
                let terms = req
                    .terms
                    .iter()
                    .find(|(ra, _)| *ra == a)
                    .map(|(_, bag)| bag.as_slice())
                    .unwrap_or(&[]);
                let values = req
                    .values
                    .iter()
                    .find(|(ra, _)| *ra == a)
                    .map(|(_, vs)| vs.as_slice())
                    .unwrap_or(&[]);
                (comp, terms, values)
            })
            .collect();
        let has_observations = per_attr
            .iter()
            .any(|(_, terms, values)| !terms.is_empty() || !values.is_empty());

        let mut tv = vec![1.0 / k as f64; k];
        let mut out = vec![0.0f64; k];
        let mut resp = vec![0.0f64; k];
        let max_iters = if has_observations {
            self.opts.max_iters
        } else {
            1 // the update is constant; one application is the fixed point
        };
        let mut iterations = 0;
        let mut converged = false;
        // The fixed-point loop reuses the scratch rows allocated above;
        // per-iteration work must stay allocation-free like the EM kernels
        // it shares (hot-path-alloc enforces it).
        // lint: region(hot-path)
        for _ in 0..max_iters {
            out.copy_from_slice(&base);
            for &(comp, terms, values) in &per_attr {
                match comp {
                    ClusterComponents::Categorical(cat) => {
                        categorical_responsibility_mass(
                            &tv,
                            cat,
                            terms,
                            &mut out,
                            &mut resp,
                            |_, _, _| {},
                        );
                    }
                    ClusterComponents::Gaussian(gauss) => {
                        gaussian_responsibility_mass(
                            &tv,
                            gauss,
                            values,
                            &mut out,
                            &mut resp,
                            |_, _, _| {},
                        );
                    }
                }
            }
            normalize_floored(&mut out);
            if smoothing > 0.0 {
                let uniform = smoothing / k as f64;
                out.iter_mut()
                    .for_each(|o| *o = (1.0 - smoothing) * *o + uniform);
            }
            let delta = out
                .iter()
                .zip(&tv)
                .map(|(o, t)| (o - t).abs())
                .fold(0.0f64, f64::max);
            tv.copy_from_slice(&out);
            iterations += 1;
            if delta < self.opts.tol {
                converged = true;
                break;
            }
        }
        // lint: end-region
        FoldInResult {
            theta: tv,
            iterations,
            converged: converged || !has_observations,
        }
    }

    /// Folds an *existing* object in as if it had just arrived, using its
    /// own out-links and observations — the consistency check behind the
    /// "fold-in reproduces the fitted row" property, also useful for
    /// auditing drift after many incremental appends.
    pub fn fold_existing(&self, v: ObjectId) -> Result<FoldInResult, ServeError> {
        if v.index() >= self.graph.n_objects() {
            return Err(genclus_hin::HinError::UnknownObject(v).into());
        }
        let mut req = FoldInRequest::default();
        for (rel, links) in self.graph.out_relation_segments(v) {
            for link in links {
                req.links.push((rel, link.endpoint, link.weight));
            }
        }
        for &a in &self.model.attributes {
            match self.graph.attribute(a) {
                genclus_hin::AttributeData::Categorical { .. } => {
                    let bag = self.graph.attribute(a).term_counts(v);
                    if !bag.is_empty() {
                        req.terms.push((a, bag.to_vec()));
                    }
                }
                genclus_hin::AttributeData::Numerical { .. } => {
                    let vals = self.graph.attribute(a).values(v);
                    if !vals.is_empty() {
                        req.values.push((a, vals.to_vec()));
                    }
                }
            }
        }
        // fold_existing feeds graph-validated data; skip re-validation but
        // note the query object's own row is *not* used — only neighbors'.
        Ok(self.assign_unchecked(&req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_core::attr_model::GaussianComponents;
    use genclus_core::em::EmEngine;
    use genclus_hin::{HinBuilder, Schema};
    use genclus_stats::MembershipMatrix;

    /// Six objects in two planted clusters, observations only on the two
    /// anchors — the em.rs fixture, fitted to a deep fixed point.
    fn fitted() -> (HinGraph, GenClusModel) {
        let mut s = Schema::new();
        let t = s.add_object_type("node");
        let r = s.add_relation("nn", t, t);
        let attr = s.add_numerical_attribute("value");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6).map(|i| b.add_object(t, format!("v{i}"))).collect();
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], r, 1.0).unwrap();
                    }
                }
            }
        }
        for x in [-5.0, -5.2, -4.8] {
            b.add_numeric(vs[0], attr, x).unwrap();
        }
        for x in [5.0, 5.2, 4.8] {
            b.add_numeric(vs[3], attr, x).unwrap();
        }
        let graph = b.build().unwrap();

        let mut rng = genclus_stats::seeded_rng(3);
        let theta = MembershipMatrix::random(graph.n_objects(), 2, &mut rng);
        let comps = vec![genclus_core::ClusterComponents::Gaussian(
            GaussianComponents::from_params(vec![-5.0, 5.0], vec![0.2, 0.2], 1e-6),
        )];
        let smoothing = 0.05;
        let mut eng = EmEngine::new(&graph, &[attr], 2, 1, 1e-9, 1e-6).with_smoothing(smoothing);
        let (theta, comps, _) = eng.run(theta, comps, &[1.0], 5000, 1e-14);
        let model = GenClusModel {
            theta,
            gamma: vec![1.0],
            components: comps,
            attributes: vec![attr],
            theta_smoothing: smoothing,
        };
        (graph, model)
    }

    #[test]
    fn fold_existing_reproduces_fitted_rows() {
        let (graph, model) = fitted();
        let engine = FoldInEngine::new(&model, &graph);
        for v in graph.objects() {
            let out = engine.fold_existing(v).unwrap();
            assert!(out.converged, "object {v} did not converge");
            let fitted_row = model.theta.row(v.index());
            for (a, b) in out.theta.iter().zip(fitted_row) {
                assert!(
                    (a - b).abs() <= 1e-9,
                    "object {v}: fold-in {a} vs fitted {b}"
                );
            }
        }
    }

    #[test]
    fn linkless_observationless_object_is_uniform() {
        let (graph, model) = fitted();
        let engine = FoldInEngine::new(&model, &graph);
        let out = engine.assign(&FoldInRequest::default()).unwrap();
        assert!(out.converged);
        assert_eq!(out.iterations, 1);
        for &x in &out.theta {
            assert!((x - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn links_alone_pull_towards_the_linked_cluster() {
        let (graph, model) = fitted();
        let engine = FoldInEngine::new(&model, &graph);
        let nn = graph.schema().relation_by_name("nn").unwrap();
        // A new sensor with *no readings at all*, linked into cluster 0.
        let req = FoldInRequest {
            links: vec![
                (nn, ObjectId(0), 1.0),
                (nn, ObjectId(1), 1.0),
                (nn, ObjectId(2), 1.0),
            ],
            ..Default::default()
        };
        let out = engine.assign(&req).unwrap();
        let c0 = model.theta.hard_labels()[0];
        assert_eq!(genclus_stats::simplex::argmax(&out.theta), c0);
        assert!(out.theta[c0] > 0.85, "row {:?}", out.theta);
    }

    #[test]
    fn observations_alone_work_and_conflicting_evidence_blends() {
        let (graph, model) = fitted();
        let attr = model.attributes[0];
        let engine = FoldInEngine::new(&model, &graph);
        // Pure observations near +5: lands in the cluster of anchor 3.
        let req = FoldInRequest {
            values: vec![(attr, vec![5.1, 4.9])],
            ..Default::default()
        };
        let out = engine.assign(&req).unwrap();
        assert!(out.converged);
        let c1 = model.theta.hard_labels()[3];
        assert_eq!(genclus_stats::simplex::argmax(&out.theta), c1);
        // Links into cluster 0 but readings from cluster 1: both terms
        // contribute, so the row is less extreme than either alone.
        let nn = graph.schema().relation_by_name("nn").unwrap();
        let mixed = FoldInRequest {
            links: vec![(nn, ObjectId(0), 3.0)],
            values: vec![(attr, vec![5.0])],
            ..Default::default()
        };
        let blended = engine.assign(&mixed).unwrap();
        assert!(blended.converged);
        assert!(blended.theta[c1] < out.theta[c1]);
    }

    #[test]
    fn invalid_requests_are_rejected_with_specific_errors() {
        let (graph, model) = fitted();
        let engine = FoldInEngine::new(&model, &graph);
        let nn = graph.schema().relation_by_name("nn").unwrap();
        let attr = model.attributes[0];

        let bad_target = FoldInRequest {
            links: vec![(nn, ObjectId(99), 1.0)],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&bad_target),
            Err(ServeError::Hin(genclus_hin::HinError::UnknownObject(_)))
        ));

        let bad_weight = FoldInRequest {
            links: vec![(nn, ObjectId(0), -1.0)],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&bad_weight),
            Err(ServeError::Hin(genclus_hin::HinError::InvalidWeight { .. }))
        ));

        let bad_relation = FoldInRequest {
            links: vec![(RelationId(7), ObjectId(0), 1.0)],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&bad_relation),
            Err(ServeError::Hin(genclus_hin::HinError::UnknownRelation(_)))
        ));

        let kind_confusion = FoldInRequest {
            terms: vec![(attr, vec![(0, 1.0)])],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&kind_confusion),
            Err(ServeError::Hin(
                genclus_hin::HinError::AttributeKindMismatch { .. }
            ))
        ));

        let nan_value = FoldInRequest {
            values: vec![(attr, vec![f64::NAN])],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&nan_value),
            Err(ServeError::Hin(
                genclus_hin::HinError::NonFiniteObservation { .. }
            ))
        ));

        // Duplicate attribute entries would silently drop all but the
        // first list; they must be rejected up front instead.
        let duplicate = FoldInRequest {
            values: vec![(attr, vec![5.0]), (attr, vec![-5.0])],
            ..Default::default()
        };
        assert!(matches!(
            engine.assign(&duplicate),
            Err(ServeError::BadRequest(msg)) if msg.contains("more than once")
        ));
    }
}
