//! Warm-start refresh: re-fitting a served model from its own snapshot.
//!
//! Fold-in (PR 2) freezes `(β, γ)` at serving time, so a long-running
//! process drifts as appended objects accumulate: the components were
//! estimated on the *original* population and the strengths on the
//! original topology. This module closes the fit → serve → grow → re-fit
//! loop:
//!
//! * every fold-in request carrying a `"commit"` field is **staged** —
//!   its inferred `Θ` row is kept and its links/observations accumulate in
//!   a [`GraphDelta`] against the current snapshot graph;
//! * a [`RefreshPolicy`] triggers a refresh automatically after
//!   `max_pending_objects` staged objects or `max_pending_links` staged
//!   links (either `0` disables that trigger), and the `refresh` op
//!   triggers one on demand at any time — including with an **empty**
//!   delta, which makes the refresh a pure warm re-fit (and, from a
//!   converged snapshot, a numerical fixed point — property-tested);
//! * a refresh appends the delta to a copy of the snapshot graph, extends
//!   `Θ` with the staged fold-in rows, and runs
//!   [`GenClus::fit_warm`] — EM seeded from the served `(Θ, β, γ)`,
//!   skipping `InitStrategy` entirely, reusing the cached-log kernel and
//!   the persistent worker pool — then **atomically swaps** the new
//!   snapshot into the engine (requests see either the old model or the
//!   new one, never a half-built state) and optionally persists it
//!   ([`RefreshPolicy::persist_path`]; same schema v1, new checksum);
//! * a failed refresh leaves the engine serving the previous snapshot and
//!   the staged delta intact.
//!
//! Wire protocol additions over [`crate::engine`]:
//!
//! * `{"op":"fold_in", …, "commit":"<name>"}` or
//!   `…, "commit":{"name":"<name>","type":"<object type>"}` — fold the
//!   object in *and* stage it for the next refresh. The object type is
//!   taken from `commit.type` or inferred from the link relations' source
//!   type (an error if the request has no links and no explicit type, or
//!   if the links disagree). The response carries the usual fold-in
//!   fields plus `"committed"`, `"pending_objects"`, `"pending_links"`,
//!   and — when the policy fired — the refresh outcome;
//! * `"in_links":[[rel, source-name, w], …]` on a commit — links
//!   **into** the committed object from pre-existing or staged sources
//!   (the DBLP-style "an old author writes the new paper" direction).
//!   They are staged alongside the commit and appended at refresh as
//!   old-source overflow links (see `genclus_hin::graph`); they do not
//!   influence the commit's own fold-in row (Eq. 10 drives a membership
//!   through *out*-links) but do shape the warm re-fit;
//! * `{"op":"refresh"}` — refresh now, regardless of thresholds. Inline
//!   mode responds with `"objects_added"`, `"links_added"`,
//!   `"outer_iterations"`, `"em_iterations"`, `"n_objects"`, `"n_links"`,
//!   `"persisted"`, `"refreshes"`; background mode responds with
//!   `"started"` / `"in_flight"` (the outcome arrives via
//!   `refresh_status` once the re-fit lands);
//! * `{"op":"refresh_status"}` — refresh observability in both modes:
//!   `"mode"`, `"in_flight"`, `"refreshes"`, the pending and in-flight
//!   object/link counts, and the last outcome (`"last_outcome"` object on
//!   success, `"last_error"` string on failure). With `"wait":true` in
//!   background mode it blocks until any in-flight re-fit lands and swaps
//!   first — the quiesce point scripted clients use;
//!
//! # Background mode (double-buffered engines)
//!
//! With [`RefreshPolicy::background`] set, a triggered refresh does **not**
//! run on the serving thread. The engine snapshots the staged window plus
//! a compacted copy of the served graph into a [`RefitInput`], hands it to
//! the dedicated [`RefitWorker`] thread, and keeps serving reads from the
//! old engine for the entire warm-EM wall time. The serving thread polls
//! the worker at the top of every `handle_line`/`handle_batch`; when the
//! re-fit lands, the refreshed snapshot is swapped in atomically — every
//! response is produced under exactly one snapshot, old until the swap,
//! new after.
//!
//! Commits arriving while a re-fit is in flight neither error nor block:
//! they stage into the **next** delta window, based on the *future* graph
//! ([`GraphDelta::new_after`]), so their ids remain valid after the swap —
//! and they may link to objects of the in-flight window by name, exactly
//! as they could under inline refresh. A failed background re-fit leaves
//! the old snapshot serving and re-merges the in-flight window with the
//! next one ([`GraphDelta::stack`]), so the staged delta survives intact
//! for a retry — the same contract as the inline path. Inline mode
//! (`background: false`, the default) keeps the original fully
//! single-threaded behavior for deployments that want no second thread.
//!
//! Commit link names — `links` targets and `in_links` sources alike —
//! resolve against the **snapshot ∪ staged** namespace: a commit may
//! reference any served object *or* any object staged earlier in the same
//! refresh window (fold-in for a staged target reads that target's staged
//! `Θ` row). Plain (uncommitted) fold-ins still resolve against the
//! snapshot only — staged objects are not served until the refresh lands.
//! At refresh the pending delta is appended (old-source links extend the
//! graph's overflow segments), the warm re-fit runs on the grown graph —
//! the EM kernels traverse base + overflow bit-identically to a compacted
//! CSR — and the graph is compacted back into a canonical CSR before the
//! new snapshot is serialized.
//!
//! # Durability (commit WAL)
//!
//! An engine opened via [`RefreshableEngine::with_wal`] pairs the staging
//! windows with an on-disk commit log ([`crate::wal`]): every accepted
//! commit is appended and **fsynced before the ack** — a commit whose log
//! append fails is rejected with nothing staged — and a refresh that
//! *persists* its snapshot atomically truncates the log down to the
//! still-staged next window, rebased onto the new snapshot. Startup
//! replays log-after-snapshot, rebuilding the staged delta and each
//! commit's fold-in `Θ` row **bit-identically** (the row is adopted from
//! the log verbatim, never re-derived). A refresh without
//! [`RefreshPolicy::persist_path`] never truncates: the log keeps
//! covering every commit since the snapshot on disk, which is the one
//! recovery will reload. A failed truncation is *not* fatal — the log
//! merely stays longer than needed (recovery skips already-persisted
//! records) — and is surfaced via `refresh_status` as `"wal_error"`
//! alongside the `"wal_records"` count.

use crate::background::{run_refit, RefitInput, RefitOutput, RefitWorker};
use crate::engine::{QueryCore, QueryEngine};
use crate::error::ServeError;
use crate::foldin::{FoldInEngine, FoldInRequest, FoldInResult};
use crate::json::Json;
use crate::metrics::RefreshSpan;
use crate::snapshot::Snapshot;
use crate::wal::{CommitRecord, Wal, WalRecoveryReport};
use genclus_core::{GenClusConfig, GenClusModel};
use genclus_hin::{GraphDelta, ObjectTypeId};
use genclus_stats::simplex::argmax;
use genclus_stats::MembershipMatrix;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// When and how the engine re-fits from its snapshot.
#[derive(Debug, Clone)]
pub struct RefreshPolicy {
    /// Auto-refresh after this many staged (committed) objects; `0`
    /// disables the object trigger.
    pub max_pending_objects: usize,
    /// Auto-refresh after this many staged links; `0` disables the link
    /// trigger.
    pub max_pending_links: usize,
    /// Outer alternations of the warm re-fit (cluster optimization +
    /// strength learning). At least 2 — the outer loop needs one
    /// iteration to measure a `γ` change.
    pub outer_iters: usize,
    /// EM iteration cap per outer alternation.
    pub em_iters: usize,
    /// EM stopping tolerance (max-abs `Θ` change).
    pub em_tol: f64,
    /// Outer stopping tolerance (max-abs `γ` change).
    pub gamma_tol: f64,
    /// Base configuration of the re-fit. The snapshot format does not
    /// record the original fit's hyperparameters (`σ`, floors, Newton
    /// options), so a deployment fitted with non-default values must pass
    /// its fitting config here — otherwise the warm re-fit silently runs
    /// under paper defaults and the model drifts toward a different fixed
    /// point. `K`, the attribute subset, and the `ε` smoothing are always
    /// realigned with the served model (via
    /// [`GenClusConfig::with_warm_start`]), and the iteration knobs above
    /// override the config's, so a stale value in those fields cannot
    /// break a refresh.
    pub base_config: Option<GenClusConfig>,
    /// Where to persist each refreshed snapshot (atomic temp-file +
    /// rename, like [`crate::snapshot::save`]); `None` keeps refreshes
    /// in-memory only.
    pub persist_path: Option<PathBuf>,
    /// Run triggered re-fits on the dedicated [`RefitWorker`] thread
    /// instead of inline on the serving thread (see the module docs'
    /// *Background mode* section). `false` — the default — keeps the
    /// engine fully single-threaded.
    pub background: bool,
}

impl Default for RefreshPolicy {
    /// Manual-only refresh (no auto triggers), paper-default fit knobs,
    /// no persistence.
    fn default() -> Self {
        Self {
            max_pending_objects: 0,
            max_pending_links: 0,
            outer_iters: 4,
            em_iters: 30,
            em_tol: 1e-4,
            gamma_tol: 1e-4,
            base_config: None,
            persist_path: None,
            background: false,
        }
    }
}

/// What one refresh did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshOutcome {
    /// Staged objects appended to the network.
    pub objects_added: usize,
    /// Staged links appended to the network.
    pub links_added: usize,
    /// Outer alternations the warm re-fit used.
    pub outer_iterations: usize,
    /// Total EM iterations across all outer alternations.
    pub em_iterations: usize,
    /// Objects of the refreshed snapshot.
    pub n_objects: usize,
    /// Links of the refreshed snapshot.
    pub n_links: usize,
    /// Whether the refreshed snapshot was written to
    /// [`RefreshPolicy::persist_path`].
    pub persisted: bool,
}

/// The staged growth since the last refresh: the delta plus the fold-in
/// `Θ` row of each staged object (in the delta's id order).
struct Pending {
    delta: GraphDelta,
    rows: Vec<Vec<f64>>,
    /// Types of the staged objects, parallel to `rows` (fed to
    /// [`FoldInEngine::with_staged`] so later commits can link to them).
    types: Vec<ObjectTypeId>,
    /// Staged name → index into `rows`/`types`, for O(1) duplicate-commit
    /// rejection *and* staged-target resolution (a linear scan of the
    /// delta's names would make filling a large refresh window quadratic).
    names: std::collections::HashMap<String, u32>,
    /// The WAL payload of each staged commit, parallel to `rows` (empty
    /// when the engine runs without a WAL). This is the window's log
    /// *segment*: when a refresh persists, [`Wal::truncate`] keeps exactly
    /// the still-staged windows' payloads verbatim.
    records: Vec<Vec<u8>>,
}

impl Pending {
    fn new(graph: &genclus_hin::HinGraph) -> Self {
        Self {
            delta: GraphDelta::new(graph),
            rows: Vec::new(),
            types: Vec::new(),
            names: std::collections::HashMap::new(),
            records: Vec::new(),
        }
    }

    /// The next staging window while `inflight` is being re-fitted
    /// elsewhere: its delta is based on the *future* graph (`graph` +
    /// `inflight`'s objects), so everything staged here stays valid
    /// verbatim once the refreshed snapshot swaps in.
    fn next_window(graph: &genclus_hin::HinGraph, inflight: &Pending) -> Result<Self, ServeError> {
        Ok(Self {
            delta: GraphDelta::new_after(graph, &inflight.delta)?,
            rows: Vec::new(),
            types: Vec::new(),
            names: std::collections::HashMap::new(),
            records: Vec::new(),
        })
    }
}

/// A [`QueryEngine`] that can grow: stages committed fold-ins and re-fits
/// itself from its snapshot, warm-started, under a [`RefreshPolicy`].
///
/// Read-only requests delegate to the inner engine (batched across the
/// worker pool, unchanged); mutating requests (`commit`ed fold-ins and
/// `refresh`) are applied in stream order, so a batch's responses reflect
/// a single consistent interleaving.
pub struct RefreshableEngine {
    engine: QueryEngine,
    policy: RefreshPolicy,
    /// The staging window commits land in. In background mode, while a
    /// re-fit is in flight this is the *next* window, based on the future
    /// graph (see [`Pending::next_window`]).
    pending: Pending,
    refreshes: usize,
    /// `Some` iff the policy asked for background mode.
    worker: Option<RefitWorker>,
    /// The window handed to the worker, kept for name resolution (its
    /// objects stay addressable by commits) and for re-merging on a failed
    /// re-fit.
    inflight: Option<Pending>,
    /// Outcome of the most recent refresh attempt, inline or background —
    /// what `refresh_status` reports.
    last_refresh: Option<Result<RefreshOutcome, String>>,
    /// The commit log ([`Self::with_wal`]); `None` runs without
    /// durability, exactly as before.
    wal: Option<Wal>,
    /// The most recent WAL truncation failure (non-fatal — see the module
    /// docs' *Durability* section); cleared by the next successful
    /// truncation.
    wal_error: Option<String>,
    /// What fired the refresh about to run, for the metrics span —
    /// `"objects"`/`"links"` when a policy threshold did, unset (→
    /// `"manual"`) for explicit `refresh` requests and library calls.
    next_trigger: Option<&'static str>,
    /// Metrics span state of the in-flight background re-fit: when the
    /// window was handed to the worker, and what triggered it.
    inflight_started: Option<(Instant, &'static str)>,
}

impl RefreshableEngine {
    /// Wraps `snapshot` in a refreshable engine with `threads` workers.
    pub fn new(snapshot: Snapshot, threads: usize, policy: RefreshPolicy) -> Self {
        let engine = QueryEngine::new(snapshot, threads);
        let pending = Pending::new(engine.graph());
        let worker = policy.background.then(RefitWorker::new);
        Self {
            engine,
            policy,
            pending,
            refreshes: 0,
            worker,
            inflight: None,
            last_refresh: None,
            wal: None,
            wal_error: None,
            next_trigger: None,
            inflight_started: None,
        }
    }

    /// [`Self::new`] plus a commit write-ahead log at `wal_path`: opens
    /// (or creates) the log, recovers it against `snapshot` — replaying
    /// logged commits into the staging window bit-identically, skipping
    /// records the snapshot already absorbed, truncating a torn tail —
    /// and from then on appends + fsyncs every accepted commit before the
    /// ack. Returns the engine and a [`WalRecoveryReport`] describing
    /// what recovery found.
    ///
    /// # Errors
    /// [`ServeError::Wal`] when the log does not belong to `snapshot`
    /// (wrong checksum or lineage, or the log is *ahead* of the snapshot)
    /// or a replayed record fails validation — corruption past the
    /// checksums, which a well-formed writer cannot produce.
    pub fn with_wal(
        snapshot: Snapshot,
        threads: usize,
        policy: RefreshPolicy,
        wal_path: &Path,
    ) -> Result<(Self, WalRecoveryReport), ServeError> {
        let mut engine = Self::new(snapshot, threads, policy);
        let base_checksum = engine.engine.snapshot().header().checksum;
        let (wal, replay) = Wal::open_or_create(wal_path, base_checksum, engine.engine.graph())?;
        let replayed = replay.records.len();
        for (record, payload) in replay.records.into_iter().zip(replay.payloads) {
            engine.replay_record(&record, payload)?;
        }
        engine.wal = Some(wal);
        // Canonicalize the log when recovery found it out of step with the
        // snapshot: records already absorbed (crash between a persisted
        // refresh and its truncation), or a header bound to an ancestor
        // snapshot. Rewriting now means the next recovery is exact.
        let n = engine.engine.graph().n_objects();
        // lint: allow(no-panic-in-serve) -- startup recovery, two lines after `engine.wal = Some(wal)`; no request is in flight yet
        let wal_ref = engine.wal.as_ref().expect("just set");
        let rewritten = replay.skipped > 0
            || wal_ref.base_objects() != n
            || wal_ref.base_checksum() != base_checksum;
        if rewritten {
            let records = std::mem::take(&mut engine.pending.records);
            let result = engine
                .wal
                .as_mut()
                // lint: allow(no-panic-in-serve) -- same startup-recovery invariant as above: the WAL was assigned in this function
                .expect("just set")
                .truncate(base_checksum, n, &records);
            engine.pending.records = records;
            result?;
        }
        // Surface what recovery found through the metrics registry too —
        // after a crash restart, `{"op":"metrics"}` reports the replay.
        {
            let m = engine.engine.metrics();
            m.record_wal_recovery(
                replayed as u64,
                replay.skipped as u64,
                replay.torn_bytes as u64,
            );
            m.set_wal_records(engine.wal.as_ref().map_or(0, Wal::n_records) as u64);
            m.set_pending(
                engine.pending_objects() as u64,
                engine.pending_links() as u64,
            );
        }
        Ok((
            engine,
            WalRecoveryReport {
                replayed,
                skipped: replay.skipped,
                torn_bytes: replay.torn_bytes,
                rewritten,
            },
        ))
    }

    /// Rebuilds one logged commit's staged state: validates it against
    /// the current window (sequential absolute id, fresh name, known
    /// type, a sane `Θ` row), stages its delta mutations, and adopts its
    /// `Θ` row verbatim — fold-in is **not** re-run, which is what makes
    /// recovery bit-identical to the uninterrupted run.
    fn replay_record(&mut self, record: &CommitRecord, payload: Vec<u8>) -> Result<(), ServeError> {
        let bad = |what: String| {
            ServeError::Wal(format!(
                "cannot replay the logged commit {:?}: {what}",
                record.name
            ))
        };
        let staged_index = Self::staged_slot(self.pending.rows.len())?;
        let graph = self.engine.graph();
        let expected = graph.n_objects() + self.pending.rows.len();
        if record.object.index() != expected {
            return Err(bad(format!(
                "it carries object id {} where {expected} was expected",
                record.object.index()
            )));
        }
        if graph.object_by_name(&record.name).is_some()
            || self.pending.names.contains_key(&record.name)
        {
            return Err(bad("an object of that name already exists".into()));
        }
        if record.object_type.index() >= graph.schema().n_object_types() {
            return Err(bad(format!("unknown object type {}", record.object_type)));
        }
        let k = self.engine.snapshot().model().n_clusters();
        if record.theta.len() != k || record.theta.iter().any(|x| !x.is_finite()) {
            return Err(bad(format!(
                "its Θ row has {} entries (need {k}, all finite)",
                record.theta.len()
            )));
        }
        let v = self
            .pending
            .delta
            .add_object(record.object_type, &record.name);
        debug_assert_eq!(v, record.object, "sequential-id check above");
        for &(r, target, w) in &record.links {
            self.pending
                .delta
                .add_link(v, target, r, w)
                .map_err(|e| bad(e.to_string()))?;
        }
        for &(r, source, w) in &record.in_links {
            self.pending
                .delta
                .add_link(source, v, r, w)
                .map_err(|e| bad(e.to_string()))?;
        }
        for (a, bag) in &record.terms {
            for &(term, count) in bag {
                self.pending
                    .delta
                    .add_term_count(v, *a, term, count)
                    .map_err(|e| bad(e.to_string()))?;
            }
        }
        for (a, values) in &record.values {
            for &x in values {
                self.pending
                    .delta
                    .add_numeric(v, *a, x)
                    .map_err(|e| bad(e.to_string()))?;
            }
        }
        self.pending.rows.push(record.theta.clone());
        self.pending.types.push(record.object_type);
        self.pending.names.insert(record.name.clone(), staged_index);
        self.pending.records.push(payload);
        Ok(())
    }

    /// The current (most recently swapped-in) read engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The policy in force.
    pub fn policy(&self) -> &RefreshPolicy {
        &self.policy
    }

    /// Staged objects awaiting the next refresh (the current staging
    /// window; objects of an in-flight re-fit are counted by
    /// [`Self::in_flight_objects`] instead).
    pub fn pending_objects(&self) -> usize {
        self.pending.delta.n_new_objects()
    }

    /// Staged links awaiting the next refresh.
    pub fn pending_links(&self) -> usize {
        self.pending.delta.n_new_links()
    }

    /// Refreshes completed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Whether a background re-fit is currently running.
    pub fn refresh_in_flight(&self) -> bool {
        self.worker.as_ref().is_some_and(RefitWorker::in_flight)
    }

    /// Objects of the window currently being re-fitted (0 when none).
    pub fn in_flight_objects(&self) -> usize {
        self.inflight
            .as_ref()
            .map_or(0, |w| w.delta.n_new_objects())
    }

    /// Links of the window currently being re-fitted (0 when none).
    pub fn in_flight_links(&self) -> usize {
        self.inflight.as_ref().map_or(0, |w| w.delta.n_new_links())
    }

    /// The most recent refresh attempt's outcome (inline or background):
    /// `Ok` with the bookkeeping, or `Err` with the failure message.
    pub fn last_refresh(&self) -> Option<&Result<RefreshOutcome, String>> {
        self.last_refresh.as_ref()
    }

    /// Records currently in the commit log; `None` when the engine runs
    /// without a WAL.
    pub fn wal_records(&self) -> Option<usize> {
        self.wal.as_ref().map(Wal::n_records)
    }

    /// The most recent (non-fatal) WAL truncation failure, if any.
    pub fn wal_error(&self) -> Option<&str> {
        self.wal_error.as_deref()
    }

    /// Test seam — see [`Wal::set_kill_hook`].
    ///
    /// # Panics
    /// Panics when the engine has no WAL.
    #[doc(hidden)]
    pub fn set_wal_kill_hook(
        &mut self,
        hook: impl Fn(&'static str) -> bool + Send + Sync + 'static,
    ) {
        self.wal
            .as_mut()
            // lint: allow(no-panic-in-serve) -- #[doc(hidden)] fault-injection seam; the documented contract is "panics when the engine has no WAL"
            .expect("kill hooks require a WAL")
            .set_kill_hook(hook);
    }

    /// A byte-exact serialization of the staged state: every window's
    /// objects (names, types), links, observations, and fold-in `Θ` rows
    /// as IEEE-754 bit patterns, in id order — the in-flight window (if
    /// any) first, then the current one. Two engines staging the same
    /// commits produce identical bytes; this is what the crash-recovery
    /// property tests compare (recovered == uninterrupted, bit for bit).
    /// Note recovery rebuilds a *single* window, so compare after
    /// [`Self::finish`] has drained any in-flight re-fit.
    pub fn staged_state_bytes(&self) -> Vec<u8> {
        use genclus_stats::bytesio::{put_f64, put_f64_slice, put_str, put_u64};
        fn window(out: &mut Vec<u8>, w: &Pending) {
            put_u64(out, w.delta.n_new_objects() as u64);
            for name in w.delta.new_object_names() {
                put_str(out, name);
            }
            for t in w.delta.new_object_types() {
                put_u64(out, t.index() as u64);
            }
            put_u64(out, w.delta.n_new_links() as u64);
            for (s, t, r, weight) in w.delta.staged_links() {
                put_u64(out, s.index() as u64);
                put_u64(out, t.index() as u64);
                put_u64(out, r.index() as u64);
                put_f64(out, weight);
            }
            for (v, a, term, count) in w.delta.staged_term_counts() {
                put_u64(out, v.index() as u64);
                put_u64(out, a.index() as u64);
                put_u64(out, u64::from(term));
                put_f64(out, count);
            }
            for (v, a, x) in w.delta.staged_numeric_obs() {
                put_u64(out, v.index() as u64);
                put_u64(out, a.index() as u64);
                put_f64(out, x);
            }
            for row in &w.rows {
                put_f64_slice(out, row);
            }
        }
        let mut out = Vec::new();
        if let Some(w) = &self.inflight {
            window(&mut out, w);
        }
        window(&mut out, &self.pending);
        out
    }

    /// Test seam — see [`RefitWorker::set_refit_hook`].
    ///
    /// # Panics
    /// Panics when the engine is not in background mode.
    #[doc(hidden)]
    pub fn set_background_refit_hook(&mut self, hook: impl Fn() + Send + Sync + 'static) {
        self.worker
            .as_mut()
            // lint: allow(no-panic-in-serve) -- #[doc(hidden)] test seam; the documented contract is "panics when the engine is not in background mode"
            .expect("refit hooks require background mode")
            .set_refit_hook(hook);
    }

    /// Stages one new object (programmatic equivalent of a `commit`ed
    /// fold-in): folds it in against the current snapshot, records its
    /// links/observations in the pending delta, and returns the inferred
    /// row. Does **not** auto-trigger a refresh — wire commits do that via
    /// the policy; library callers decide themselves.
    ///
    /// Link targets in `req` may name staged objects of the current
    /// refresh window (ids `graph.n_objects()..`); see
    /// [`Self::commit_with_links`] for links *into* the new object.
    pub fn commit(
        &mut self,
        name: &str,
        object_type: ObjectTypeId,
        req: &FoldInRequest,
    ) -> Result<FoldInResult, ServeError> {
        self.commit_with_links(name, object_type, req, &[])
    }

    /// [`Self::commit`] plus `in_links`: links `(relation, source, weight)`
    /// **into** the new object from pre-existing or staged sources — the
    /// old → new direction the overflow adjacency exists for. They are
    /// staged with the commit (counted by [`Self::pending_links`]) and
    /// appended at refresh; the fold-in row is unaffected (Eq. 10 reads
    /// out-links only).
    pub fn commit_with_links(
        &mut self,
        name: &str,
        object_type: ObjectTypeId,
        req: &FoldInRequest,
        in_links: &[(genclus_hin::RelationId, genclus_hin::ObjectId, f64)],
    ) -> Result<FoldInResult, ServeError> {
        // The staged-id space is u32 (the names map and `ObjectId` alike);
        // checked up front so staging below is all-or-nothing.
        let staged_index = Self::staged_slot(self.pending.rows.len())?;
        let graph = self.engine.graph();
        if graph.object_by_name(name).is_some() {
            return Err(ServeError::BadRequest(format!(
                "object {name:?} already exists in the snapshot"
            )));
        }
        if self.pending.names.contains_key(name) {
            return Err(ServeError::BadRequest(format!(
                "object {name:?} is already staged for the next refresh"
            )));
        }
        if self
            .inflight
            .as_ref()
            .is_some_and(|w| w.names.contains_key(name))
        {
            return Err(ServeError::BadRequest(format!(
                "object {name:?} is already being refreshed into the next snapshot"
            )));
        }
        if object_type.index() >= graph.schema().n_object_types() {
            return Err(ServeError::BadRequest(format!(
                "unknown object type {object_type}"
            )));
        }
        // Endpoint-type checks up front so staging below is all-or-nothing
        // (`GraphDelta::add_link` would reject mid-way otherwise). The
        // addressable id space is snapshot ∪ in-flight window ∪ current
        // window, in that id order.
        let inflight_len = self.inflight.as_ref().map_or(0, |w| w.rows.len());
        let n_known = graph.n_objects() + inflight_len + self.pending.rows.len();
        let type_of = |v: genclus_hin::ObjectId| {
            if v.index() < graph.n_objects() {
                graph.object_type(v)
            } else if v.index() < graph.n_objects() + inflight_len {
                // lint: allow(no-panic-in-serve) -- this branch is reachable only when inflight_len > 0, i.e. the window exists
                self.inflight.as_ref().expect("inflight_len > 0").types
                    [v.index() - graph.n_objects()]
            } else {
                self.pending.types[v.index() - graph.n_objects() - inflight_len]
            }
        };
        for &(r, _, _) in &req.links {
            if r.index() >= graph.schema().n_relations() {
                return Err(genclus_hin::HinError::UnknownRelation(r).into());
            }
            let def = graph.schema().relation(r);
            if def.source != object_type {
                return Err(ServeError::BadRequest(format!(
                    "relation {:?} does not originate at type {:?}",
                    def.name,
                    graph.schema().object_type_name(object_type)
                )));
            }
        }
        for &(r, source, w) in in_links {
            if r.index() >= graph.schema().n_relations() {
                return Err(genclus_hin::HinError::UnknownRelation(r).into());
            }
            if source.index() >= n_known {
                return Err(genclus_hin::HinError::UnknownObject(source).into());
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(genclus_hin::HinError::InvalidWeight { weight: w }.into());
            }
            let def = graph.schema().relation(r);
            if def.target != object_type {
                return Err(ServeError::BadRequest(format!(
                    "relation {:?} does not target type {:?}",
                    def.name,
                    graph.schema().object_type_name(object_type)
                )));
            }
            if type_of(source) != def.source {
                return Err(ServeError::BadRequest(format!(
                    "in_link source {source} has the wrong type for relation {:?}",
                    def.name
                )));
            }
        }
        // `assign` validates everything else (targets — snapshot or
        // staged, weights, attribute kinds/vocab, finiteness, purpose
        // membership) before we mutate. The staged view covers the
        // in-flight window too: their rows continue the graph's id space
        // first, then the current window's.
        let combined: (Vec<Vec<f64>>, Vec<ObjectTypeId>);
        let (staged_rows, staged_types): (&[Vec<f64>], &[ObjectTypeId]) = match &self.inflight {
            Some(w) => {
                combined = (
                    [w.rows.as_slice(), self.pending.rows.as_slice()].concat(),
                    [w.types.as_slice(), self.pending.types.as_slice()].concat(),
                );
                (&combined.0, &combined.1)
            }
            None => (&self.pending.rows, &self.pending.types),
        };
        let folded = FoldInEngine::new(self.engine.snapshot().model(), graph)
            .with_staged(staged_rows, staged_types)
            .assign(req)?;

        // Durability point: the commit reaches the log — and the disk —
        // before anything is staged, so an append failure rejects the
        // commit with the engine untouched, and a crash after this line
        // replays it. `n_known` is the absolute id the object will own
        // once every window ahead of it lands.
        let wal_payload = match &mut self.wal {
            Some(wal) => {
                let record = CommitRecord {
                    object: genclus_hin::ObjectId::from_index(n_known),
                    object_type,
                    name: name.to_string(),
                    links: req.links.clone(),
                    in_links: in_links.to_vec(),
                    terms: req.terms.clone(),
                    values: req.values.clone(),
                    theta: folded.theta.clone(),
                };
                let payload = record.to_bytes();
                let append_started = self.engine.metrics().timer();
                wal.append(&payload)?;
                if let Some(t) = append_started {
                    self.engine.metrics().record_wal_append(t.elapsed());
                }
                Some(payload)
            }
            None => None,
        };

        // The four `.expect`s below are deliberate: they run *after* the
        // WAL append (the durability point). `assign` validated every
        // link/term/value before the record hit disk, so a failure here is
        // a staging/validation desync — returning an error would leave a
        // logged commit that was never staged, and stopping loudly beats
        // replaying that divergence forever.
        let v = self.pending.delta.add_object(object_type, name);
        for &(r, target, w) in &req.links {
            self.pending
                .delta
                .add_link(v, target, r, w)
                // lint: allow(no-panic-in-serve) -- post-durability-point invariant: assign validated this link before the WAL append; erroring out now would desync log and window
                .expect("links were validated before staging");
        }
        for &(r, source, w) in in_links {
            self.pending
                .delta
                .add_link(source, v, r, w)
                // lint: allow(no-panic-in-serve) -- post-durability-point invariant, as above
                .expect("in_links were validated before staging");
        }
        for (a, bag) in &req.terms {
            for &(term, count) in bag {
                self.pending
                    .delta
                    .add_term_count(v, *a, term, count)
                    // lint: allow(no-panic-in-serve) -- post-durability-point invariant, as above
                    .expect("terms were validated before staging");
            }
        }
        for (a, values) in &req.values {
            for &x in values {
                self.pending
                    .delta
                    .add_numeric(v, *a, x)
                    // lint: allow(no-panic-in-serve) -- post-durability-point invariant, as above
                    .expect("values were validated before staging");
            }
        }
        self.pending.rows.push(folded.theta.clone());
        self.pending.types.push(object_type);
        self.pending.names.insert(name.to_string(), staged_index);
        if let Some(payload) = wal_payload {
            self.pending.records.push(payload);
        }
        let metrics = self.engine.metrics();
        metrics.set_pending(self.pending_objects() as u64, self.pending_links() as u64);
        if let Some(n) = self.wal_records() {
            metrics.set_wal_records(n as u64);
        }
        Ok(folded)
    }

    /// The staged-object slot for the next commit, as the `u32` the
    /// staged-id space uses throughout (`ObjectId`, the names map). A
    /// window can in principle outgrow it on a 64-bit host; the overflow
    /// must surface as a structured request error, not an `as`-cast
    /// truncation that silently aliases two staged objects.
    fn staged_slot(n_staged: usize) -> Result<u32, ServeError> {
        u32::try_from(n_staged).map_err(|_| {
            ServeError::BadRequest(format!(
                "refresh window already holds {n_staged} staged objects — the staged-id \
                 space is u32; refresh before committing more"
            ))
        })
    }

    /// Resolves a commit link name against the snapshot ∪ staged
    /// namespace: served objects win (staged duplicates of served names are
    /// rejected at commit time anyway), then objects of the in-flight
    /// refresh window (background mode — they will own the ids directly
    /// past the snapshot once the swap lands), then objects staged in the
    /// current window, addressed past both.
    fn resolve_committed(&self, name: &str) -> Result<genclus_hin::ObjectId, ServeError> {
        let graph = self.engine.graph();
        if let Some(v) = graph.object_by_name(name) {
            return Ok(v);
        }
        let inflight_len = match &self.inflight {
            Some(w) => {
                if let Some(&i) = w.names.get(name) {
                    return Ok(genclus_hin::ObjectId::from_index(
                        graph.n_objects() + i as usize,
                    ));
                }
                w.rows.len()
            }
            None => 0,
        };
        if let Some(&i) = self.pending.names.get(name) {
            return Ok(genclus_hin::ObjectId::from_index(
                graph.n_objects() + inflight_len + i as usize,
            ));
        }
        Err(genclus_hin::HinError::UnknownName(name.to_string()).into())
    }

    /// Whether the policy's auto-trigger thresholds are met.
    /// Which policy threshold the current window has crossed, for the
    /// metrics span's `trigger` field. Only meaningful when
    /// [`Self::due_for_refresh`] just returned true; the object threshold
    /// wins when both crossed at once.
    fn trigger_label(&self) -> &'static str {
        let p = &self.policy;
        if p.max_pending_objects > 0 && self.pending_objects() >= p.max_pending_objects {
            "objects"
        } else {
            "links"
        }
    }

    pub fn due_for_refresh(&self) -> bool {
        let p = &self.policy;
        (p.max_pending_objects > 0 && self.pending_objects() >= p.max_pending_objects)
            || (p.max_pending_links > 0 && self.pending_links() >= p.max_pending_links)
    }

    /// Staleness pre-check: the pending delta must have been staged
    /// against exactly this snapshot. `append` would catch the mismatch
    /// too, but only after the graph clone — and this invariant breaking
    /// means a bug in the swap logic, worth its own message.
    fn check_window_freshness(&self) -> Result<(), ServeError> {
        let n = self.engine.graph().n_objects();
        if self.pending.delta.base_objects() != n {
            return Err(ServeError::Refresh(format!(
                "pending delta was staged against a {}-object snapshot but the engine serves {}",
                self.pending.delta.base_objects(),
                n
            )));
        }
        Ok(())
    }

    /// Packages the current window + served snapshot into the owned input
    /// [`run_refit`] consumes — the warm seed (`Θ` extended with the
    /// staged fold-in rows), the resolved config, and cloned graph/delta.
    fn build_refit_input(&self) -> RefitInput {
        let snapshot = self.engine.snapshot();
        let model = snapshot.model();
        // Θ over the grown network: served rows for old objects, the
        // staged fold-in rows for new ones — the warm seed.
        let mut rows: Vec<Vec<f64>> = (0..model.theta.n_objects())
            .map(|i| model.theta.row(i).to_vec())
            .collect();
        rows.extend(self.pending.rows.iter().cloned());
        let warm = GenClusModel {
            theta: MembershipMatrix::from_rows(&rows, model.n_clusters()),
            gamma: model.gamma.clone(),
            components: model.components.clone(),
            attributes: model.attributes.clone(),
            theta_smoothing: model.theta_smoothing,
        };
        let mut cfg = self
            .policy
            .base_config
            .clone()
            .unwrap_or_else(|| GenClusConfig::new(model.n_clusters(), model.attributes.clone()))
            .with_warm_start(&warm);
        cfg.outer_iters = self.policy.outer_iters.max(2);
        cfg.em_iters = self.policy.em_iters;
        cfg.em_tol = self.policy.em_tol;
        cfg.gamma_tol = self.policy.gamma_tol;
        cfg.threads = self.engine.threads();
        RefitInput {
            graph: snapshot.graph().clone(),
            delta: self.pending.delta.clone(),
            warm,
            cfg,
            persist_path: self.policy.persist_path.clone(),
            threads: self.engine.threads(),
            metrics: self.engine.metrics().clone(),
        }
    }

    /// Applies the pending delta (possibly empty) and warm-refits,
    /// **inline** — the caller blocks for the full re-fit. This is the
    /// only refresh path of an inline-mode engine, and remains available
    /// in background mode as an explicit blocking fallback (erroring when
    /// a background re-fit is already in flight, since two re-fits of one
    /// base snapshot cannot both land).
    ///
    /// On success the refreshed snapshot replaces the engine's atomically
    /// (and is persisted first if the policy asks for it); on error the
    /// engine keeps serving the previous snapshot and the pending delta is
    /// untouched.
    pub fn refresh(&mut self) -> Result<RefreshOutcome, ServeError> {
        let result = self.refresh_inner();
        self.last_refresh = Some(match &result {
            Ok(outcome) => Ok(outcome.clone()),
            Err(e) => Err(e.to_string()),
        });
        result
    }

    fn refresh_inner(&mut self) -> Result<RefreshOutcome, ServeError> {
        let trigger = self.next_trigger.take().unwrap_or("manual");
        let staged_objects = self.pending_objects() as u64;
        let staged_links = self.pending_links() as u64;
        let started = Instant::now();
        let result = self.refit_and_swap();
        let metrics = self.engine.metrics().clone();
        let span = match &result {
            Ok((outcome, refit_seconds)) => RefreshSpan {
                mode: "inline",
                trigger,
                staged_objects,
                staged_links,
                outer_iterations: outcome.outer_iterations as u64,
                em_iterations: outcome.em_iterations as u64,
                refit_seconds: *refit_seconds,
                wall_seconds: started.elapsed().as_secs_f64(),
                persisted: outcome.persisted,
                ok: true,
                error: None,
            },
            Err(e) => RefreshSpan {
                mode: "inline",
                trigger,
                staged_objects,
                staged_links,
                outer_iterations: 0,
                em_iterations: 0,
                refit_seconds: 0.0,
                wall_seconds: started.elapsed().as_secs_f64(),
                persisted: false,
                ok: false,
                error: Some(e.to_string()),
            },
        };
        metrics.record_refresh_span(span);
        metrics.set_pending(self.pending_objects() as u64, self.pending_links() as u64);
        result.map(|(outcome, _)| outcome)
    }

    /// The inline refresh minus the span bookkeeping: re-fit, swap, rebase
    /// the log. Returns the outcome plus the re-fit's own wall time.
    fn refit_and_swap(&mut self) -> Result<(RefreshOutcome, f64), ServeError> {
        if self.refresh_in_flight() {
            return Err(ServeError::Refresh(
                "a background re-fit is already in flight; wait for it via refresh_status".into(),
            ));
        }
        self.check_window_freshness()?;
        let output = run_refit(self.build_refit_input())?;
        let refit_seconds = output.seconds;
        // The swap: everything after this point sees the new model.
        self.engine = output.engine;
        self.pending = Pending::new(self.engine.graph());
        self.refreshes += 1;
        self.truncate_wal_after_refresh(output.outcome.persisted);
        Ok((output.outcome, refit_seconds))
    }

    /// Truncates the commit log down to the still-staged window after a
    /// refresh — but only when the refreshed snapshot was *persisted*:
    /// until it reaches disk, the log is the only durable record of the
    /// commits it absorbed, and recovery reloads the old on-disk snapshot
    /// plus the full log. A truncation failure is non-fatal (the log
    /// merely stays longer than needed; recovery skips absorbed records)
    /// and is surfaced through [`Self::wal_error`] / `refresh_status`.
    fn truncate_wal_after_refresh(&mut self, persisted: bool) {
        if !persisted {
            return;
        }
        let base_checksum = self.engine.snapshot().header().checksum;
        let n = self.engine.graph().n_objects();
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        let result = wal.truncate(base_checksum, n, &self.pending.records);
        self.wal_error = result.err().map(|e| e.to_string());
        let metrics = self.engine.metrics();
        metrics.record_wal_truncation(self.wal_error.clone());
        metrics.set_wal_records(self.wal.as_ref().map_or(0, Wal::n_records) as u64);
    }

    /// Hands the current window to the background worker and opens the
    /// next one; reads keep answering from the old engine until the swap.
    /// `Ok(false)` when a re-fit is already in flight (the window simply
    /// keeps accumulating — the completion path re-checks the policy).
    ///
    /// # Errors
    /// [`ServeError::Refresh`] when the engine is not in background mode
    /// or the window fails the staleness check; nothing is staged or lost
    /// in either case.
    pub fn start_background_refresh(&mut self) -> Result<bool, ServeError> {
        if self.worker.is_none() {
            return Err(ServeError::Refresh(
                "engine is not in background mode (RefreshPolicy::background)".into(),
            ));
        }
        if self.refresh_in_flight() {
            return Ok(false);
        }
        self.check_window_freshness()?;
        let input = self.build_refit_input();
        let next = Pending::next_window(self.engine.graph(), &self.pending)?;
        let window = std::mem::replace(&mut self.pending, next);
        self.inflight = Some(window);
        // Clock before the handoff: the span's wall time must cover the
        // worker's own refit timer, which starts ticking on submit.
        let trigger = self.next_trigger.take().unwrap_or("manual");
        self.inflight_started = Some((Instant::now(), trigger));
        // lint: allow(no-panic-in-serve) -- guarded by the is_none() early return at function entry; the borrow of self between there and here prevents holding the worker reference
        self.worker.as_mut().expect("checked above").start(input);
        let metrics = self.engine.metrics();
        metrics.set_refresh_in_flight(true);
        metrics.set_pending(self.pending_objects() as u64, self.pending_links() as u64);
        Ok(true)
    }

    /// Non-blocking completion check; called at the top of every
    /// `handle_line`/`handle_batch`, so the swap happens between requests,
    /// never under one.
    fn poll_background(&mut self) {
        if let Some(result) = self.worker.as_mut().and_then(RefitWorker::poll) {
            self.complete_background(result);
        }
    }

    /// Public non-blocking completion check: lands a finished background
    /// re-fit (snapshot swap) if one is ready, otherwise returns
    /// immediately. The stdio loop gets this for free at the top of every
    /// `handle_line`/`handle_batch`; the TCP front-end calls it from idle
    /// connection ticks so a finished re-fit is published promptly even
    /// when no mutations arrive.
    pub fn poll_refresh(&mut self) {
        self.poll_background();
    }

    /// Blocks until any in-flight background re-fit lands (swapping it in,
    /// or restoring the window on failure). A chained re-fit started by
    /// the completion path is waited out too. No-op in inline mode.
    pub fn finish(&mut self) {
        while let Some(result) = self.worker.as_mut().and_then(RefitWorker::join) {
            self.complete_background(result);
        }
    }

    /// Lands one finished background re-fit: swap on success (re-checking
    /// the policy against the next window), merge the windows back
    /// together on failure.
    fn complete_background(&mut self, result: Result<RefitOutput, ServeError>) {
        let window = self
            .inflight
            .take()
            // lint: allow(no-panic-in-serve) -- completion callback invariant: the worker only reports results for the window start_background_refresh put in flight
            .expect("a completed re-fit implies an in-flight window");
        let (started_at, trigger) = self
            .inflight_started
            .take()
            .unwrap_or((Instant::now(), "manual"));
        let staged_objects = window.delta.n_new_objects() as u64;
        let staged_links = window.delta.n_new_links() as u64;
        match result {
            Ok(RefitOutput {
                engine,
                outcome,
                seconds,
            }) => {
                self.engine = engine;
                debug_assert_eq!(
                    self.pending.delta.base_objects(),
                    self.engine.graph().n_objects(),
                    "the next window was staged against exactly this graph"
                );
                self.refreshes += 1;
                // The in-flight window's log segment is spent (its commits
                // are in the new snapshot); the next window's records are
                // what the rebased log keeps.
                self.truncate_wal_after_refresh(outcome.persisted);
                let metrics = self.engine.metrics().clone();
                metrics.record_refresh_span(RefreshSpan {
                    mode: "background",
                    trigger,
                    staged_objects,
                    staged_links,
                    outer_iterations: outcome.outer_iterations as u64,
                    em_iterations: outcome.em_iterations as u64,
                    refit_seconds: seconds,
                    // Trigger → swap, as the client experiences it: the
                    // hand-off, the re-fit, and the poll delay.
                    wall_seconds: started_at.elapsed().as_secs_f64(),
                    persisted: outcome.persisted,
                    ok: true,
                    error: None,
                });
                metrics.set_refresh_in_flight(false);
                metrics.set_pending(self.pending_objects() as u64, self.pending_links() as u64);
                self.last_refresh = Some(Ok(outcome));
                // The next window may have crossed the thresholds while
                // the re-fit ran; chain immediately rather than waiting
                // for the next commit. A chained-*start* failure must not
                // overwrite the landed refresh's outcome — the swap DID
                // succeed, and `refresh_status` must say so; the un-started
                // window stays pending, so the failure resurfaces on the
                // next trigger or explicit refresh.
                if self.due_for_refresh() {
                    self.next_trigger = Some(self.trigger_label());
                    let _ = self.start_background_refresh();
                }
            }
            Err(e) => {
                // Old snapshot keeps serving. Re-merge the in-flight
                // window with the next one so the staged delta survives
                // intact for a retry (ids line up by construction — the
                // next window was staged on the future base).
                let next = std::mem::replace(&mut self.pending, window);
                let offset = u32::try_from(self.pending.rows.len())
                    // lint: allow(no-panic-in-serve) -- every staged id passed the u32 staged_slot bound at commit time, so the window length fits
                    .expect("window sizes passed staged_slot at commit time");
                self.pending
                    .delta
                    .stack(next.delta)
                    // lint: allow(no-panic-in-serve) -- failure-retry merge of two windows this engine itself staged back-to-back; a mismatch is unrecoverable state desync
                    .expect("the next window was staged directly on top");
                self.pending.rows.extend(next.rows);
                self.pending.types.extend(next.types);
                for (name, i) in next.names {
                    self.pending.names.insert(name, offset + i);
                }
                // Log segments merge exactly like the windows: the
                // in-flight window's records come first (lower absolute
                // ids), matching the order they already hold on disk.
                self.pending.records.extend(next.records);
                let metrics = self.engine.metrics().clone();
                metrics.record_refresh_span(RefreshSpan {
                    mode: "background",
                    trigger,
                    staged_objects,
                    staged_links,
                    outer_iterations: 0,
                    em_iterations: 0,
                    refit_seconds: 0.0,
                    wall_seconds: started_at.elapsed().as_secs_f64(),
                    persisted: false,
                    ok: false,
                    error: Some(e.to_string()),
                });
                metrics.set_refresh_in_flight(false);
                metrics.set_pending(self.pending_objects() as u64, self.pending_links() as u64);
                self.last_refresh = Some(Err(e.to_string()));
            }
        }
    }

    /// One request line → one response line, commit/refresh aware. In
    /// background mode a finished re-fit is swapped in first, so the
    /// response is produced under exactly one snapshot.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.poll_background();
        match Self::parse_mutation(line) {
            Some(req) => self.respond_mutation(&req),
            None => self.engine.handle_line(line),
        }
    }

    /// Handles a batch, preserving order: read-only runs go through the
    /// inner engine's parallel batch path; mutations are applied at their
    /// position in the stream.
    pub fn handle_batch(&mut self, lines: &[String]) -> Vec<String> {
        self.poll_background();
        let mut out = Vec::with_capacity(lines.len());
        let mut run_start = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if let Some(req) = Self::parse_mutation(line) {
                if run_start < i {
                    out.extend(self.engine.handle_batch(&lines[run_start..i]));
                }
                out.push(self.respond_mutation(&req));
                run_start = i + 1;
            }
        }
        if run_start < lines.len() {
            out.extend(self.engine.handle_batch(&lines[run_start..]));
        }
        out
    }

    /// `Some(parsed)` when `line` is a mutating request this layer must
    /// serialize (`refresh`, or `fold_in` with a `commit` field). Parse
    /// failures return `None` — the inner engine produces the error
    /// response. `pub(crate)` because the TCP front-end ([`crate::net`])
    /// uses the same classifier to route lines between the shared-read
    /// path and the exclusive mutation lane.
    pub(crate) fn parse_mutation(line: &str) -> Option<Json> {
        // Fast reject before paying for a parse: a mutation line must
        // contain the literal key/op text somewhere (the inner engine
        // re-parses whatever this layer delegates, so a full parse here
        // would double the parse cost of the read-dominated hot path).
        // False positives — e.g. an object *named* "commit" — just fall
        // through to the precise check below. A backslash disables the
        // fast path entirely: `\uXXXX` escapes can spell "commit" or
        // "refresh" without the literal bytes appearing in the line.
        // `stats` is intercepted (read-only) so this layer can extend the
        // inner engine's response with the WAL fields only it knows.
        if !(line.contains('\\')
            || line.contains("refresh")
            || line.contains("commit")
            || line.contains("stats"))
        {
            return None;
        }
        let req = Json::parse(line).ok()?;
        match req.get("op").and_then(Json::as_str) {
            Some("refresh") | Some("refresh_status") | Some("stats") => Some(req),
            Some("fold_in") if req.get("commit").is_some() => Some(req),
            _ => None,
        }
    }

    /// Wraps a mutation result in the engine's response envelope.
    fn respond_mutation(&mut self, req: &Json) -> String {
        // Cloned up front: `op_refresh` may swap `self.engine`, but the
        // replacement is wired to the same registry, so timing against the
        // pre-swap Arc records into the same histograms.
        let metrics = self.engine.metrics().clone();
        let started = metrics.timer();
        let op = match req.get("op").and_then(Json::as_str) {
            Some("refresh") => "refresh",
            Some("refresh_status") => "refresh_status",
            Some("stats") => "stats",
            _ => "commit",
        };
        let result = match op {
            "refresh" => self.op_refresh(),
            "refresh_status" => self.op_refresh_status(req),
            "stats" => self.op_stats(),
            _ => self.op_commit(req),
        };
        let ok = result.is_ok();
        let mut fields: Vec<(&str, Json)> = Vec::with_capacity(4);
        if let Some(id) = req.get("id") {
            fields.push(("id", id.clone()));
        }
        match result {
            Ok(mut body) => {
                fields.push(("ok", Json::Bool(true)));
                fields.append(&mut body);
            }
            Err(e) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", Json::str(e.to_string())));
            }
        }
        let rendered = Json::obj(fields).render();
        metrics.record_op(op, started, ok);
        rendered
    }

    /// The inner engine's `stats` body extended with the WAL state only
    /// this layer knows — `wal_records` / `wal_error` used to be visible
    /// through `refresh_status` alone, which made the one-stop `stats`
    /// view silently incomplete on durable deployments.
    fn op_stats(&self) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let mut fields = self.engine.core().op_stats()?;
        if let Some(n) = self.wal_records() {
            fields.push(("wal_records", Json::Num(n as f64)));
        }
        if let Some(e) = self.wal_error() {
            fields.push(("wal_error", Json::str(e.to_string())));
        }
        Ok(fields)
    }

    fn outcome_pairs(outcome: &RefreshOutcome) -> Vec<(&'static str, Json)> {
        vec![
            ("objects_added", Json::Num(outcome.objects_added as f64)),
            ("links_added", Json::Num(outcome.links_added as f64)),
            (
                "outer_iterations",
                Json::Num(outcome.outer_iterations as f64),
            ),
            ("em_iterations", Json::Num(outcome.em_iterations as f64)),
            ("n_objects", Json::Num(outcome.n_objects as f64)),
            ("n_links", Json::Num(outcome.n_links as f64)),
            ("persisted", Json::Bool(outcome.persisted)),
        ]
    }

    fn outcome_fields(&self, outcome: &RefreshOutcome, fields: &mut Vec<(&'static str, Json)>) {
        fields.extend(Self::outcome_pairs(outcome));
        fields.push(("refreshes", Json::Num(self.refreshes as f64)));
    }

    fn op_refresh(&mut self) -> Result<Vec<(&'static str, Json)>, ServeError> {
        if self.worker.is_some() {
            // Background mode: kick the re-fit off and return immediately
            // — the outcome arrives via `refresh_status` once it lands.
            // `started:false` means one was already in flight.
            let started = self.start_background_refresh()?;
            return Ok(vec![
                ("refreshed", Json::Bool(false)),
                ("started", Json::Bool(started)),
                ("in_flight", Json::Bool(true)),
                ("refreshes", Json::Num(self.refreshes as f64)),
                ("pending_objects", Json::Num(self.pending_objects() as f64)),
                ("pending_links", Json::Num(self.pending_links() as f64)),
            ]);
        }
        let outcome = self.refresh()?;
        let mut fields = vec![("refreshed", Json::Bool(true))];
        self.outcome_fields(&outcome, &mut fields);
        Ok(fields)
    }

    fn op_refresh_status(&mut self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let wait = match req.get("wait") {
            None => false,
            Some(j) => j
                .as_bool()
                .ok_or_else(|| ServeError::BadRequest("\"wait\" must be a boolean".into()))?,
        };
        if wait {
            self.finish();
        }
        let mut fields = vec![
            (
                "mode",
                Json::str(if self.worker.is_some() {
                    "background"
                } else {
                    "inline"
                }),
            ),
            ("in_flight", Json::Bool(self.refresh_in_flight())),
            ("refreshes", Json::Num(self.refreshes as f64)),
            ("pending_objects", Json::Num(self.pending_objects() as f64)),
            ("pending_links", Json::Num(self.pending_links() as f64)),
            (
                "in_flight_objects",
                Json::Num(self.in_flight_objects() as f64),
            ),
            ("in_flight_links", Json::Num(self.in_flight_links() as f64)),
        ];
        if let Some(n) = self.wal_records() {
            fields.push(("wal_records", Json::Num(n as f64)));
        }
        if let Some(e) = self.wal_error() {
            fields.push(("wal_error", Json::str(e.to_string())));
        }
        match &self.last_refresh {
            Some(Ok(outcome)) => {
                fields.push(("last_outcome", Json::obj(Self::outcome_pairs(outcome))))
            }
            Some(Err(e)) => fields.push(("last_error", Json::str(e.clone()))),
            None => {}
        }
        Ok(fields)
    }

    /// Decodes the `commit` field: a bare name, or `{name, type}`.
    fn decode_commit(
        &self,
        req: &Json,
        fold_req: &FoldInRequest,
    ) -> Result<(String, ObjectTypeId), ServeError> {
        let commit = req
            .get("commit")
            .ok_or(ServeError::Malformed("commit field missing"))?;
        let (name, type_name) = match commit {
            Json::Str(name) => (name.clone(), None),
            Json::Obj(_) => {
                let name = commit
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServeError::BadRequest("\"commit\" object needs a string \"name\"".into())
                    })?
                    .to_string();
                let type_name = commit
                    .get("type")
                    .map(|t| {
                        t.as_str().map(str::to_string).ok_or_else(|| {
                            ServeError::BadRequest("\"commit\".\"type\" must be a string".into())
                        })
                    })
                    .transpose()?;
                (name, type_name)
            }
            _ => {
                return Err(ServeError::BadRequest(
                    "\"commit\" must be a name or {\"name\", \"type\"}".into(),
                ))
            }
        };
        let schema = self.engine.graph().schema();
        let object_type = match type_name {
            Some(t) => schema
                .object_type_by_name(&t)
                .ok_or_else(|| ServeError::BadRequest(format!("unknown object type {t:?}")))?,
            None => {
                // Infer from the link relations' source type; they must
                // all agree and at least one link must exist.
                let mut inferred: Option<ObjectTypeId> = None;
                for &(r, _, _) in &fold_req.links {
                    let src = schema.relation(r).source;
                    match inferred {
                        None => inferred = Some(src),
                        Some(prev) if prev != src => {
                            return Err(ServeError::BadRequest(
                                "link relations disagree on the new object's type; \
                                 pass \"commit\":{\"name\",\"type\"} explicitly"
                                    .into(),
                            ))
                        }
                        Some(_) => {}
                    }
                }
                inferred.ok_or_else(|| {
                    ServeError::BadRequest(
                        "cannot infer the new object's type without links; \
                         pass \"commit\":{\"name\",\"type\"} explicitly"
                            .into(),
                    )
                })?
            }
        };
        Ok((name, object_type))
    }

    fn op_commit(&mut self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        // Commit link names resolve against snapshot ∪ staged — a commit
        // may cite an object staged earlier in this refresh window.
        let fold_req = self
            .engine
            .core()
            .decode_fold_in_with(req, &|n| self.resolve_committed(n))?;
        let in_links = match req.get("in_links") {
            Some(j) => self
                .engine
                .core()
                .decode_link_triples(j, "in_links", &|n| self.resolve_committed(n))?,
            None => Vec::new(),
        };
        let (name, object_type) = self.decode_commit(req, &fold_req)?;
        // Validate the optional ranking parameters *before* staging — a
        // commit is not repeatable, so nothing may fail after it.
        let k = req
            .get("k")
            .map(|kj| {
                kj.as_usize().ok_or_else(|| {
                    ServeError::BadRequest("\"k\" must be a non-negative integer".into())
                })
            })
            .transpose()?;
        let sim = QueryCore::similarity(req)?;
        if k.is_some() {
            let _ = self.engine.core().candidates(req)?;
        }
        let folded = self.commit_with_links(&name, object_type, &fold_req, &in_links)?;
        let mut fields = vec![
            ("theta", Json::nums(&folded.theta)),
            ("cluster", Json::Num(argmax(&folded.theta) as f64)),
            ("iterations", Json::Num(folded.iterations as f64)),
            ("converged", Json::Bool(folded.converged)),
            ("committed", Json::str(name)),
        ];
        // Rank against the *current* (pre-refresh) model — the same one
        // the folded row was inferred under, matching plain fold_in.
        if let Some(k) = k {
            let core = self.engine.core();
            let theta = &self.engine.snapshot().model().theta;
            let ranked = genclus_core::top_k(theta, &folded.theta, core.candidates(req)?, sim, k);
            fields.push(("results", core.ranked_json(&ranked)));
        }
        if self.due_for_refresh() {
            // Exactly-one-fire semantics: `due_for_refresh` is a single
            // predicate over both thresholds, and acting on it drains the
            // window (inline swap, or hand-off to the worker) — so a
            // commit crossing the object AND link thresholds at once still
            // triggers one refresh, never one per threshold.
            self.next_trigger = Some(self.trigger_label());
            if self.worker.is_some() {
                if self.refresh_in_flight() {
                    // The previous window is still re-fitting; this one
                    // keeps accumulating and the completion path re-checks
                    // the thresholds.
                    fields.push(("refresh_in_flight", Json::Bool(true)));
                } else {
                    // Hand the window to the worker and keep serving. Like
                    // the inline path below, a failure to *start* must not
                    // fail the commit (it is staged and unrepeatable).
                    match self.start_background_refresh() {
                        Ok(_started) => fields.push(("refresh_started", Json::Bool(true))),
                        Err(e) => {
                            fields.push(("refresh_started", Json::Bool(false)));
                            fields.push(("refresh_error", Json::str(e.to_string())));
                        }
                    }
                }
            } else {
                // The commit itself already succeeded and is staged — a
                // refresh failure (e.g. an unwritable persist path) must
                // not turn this response into an error, or the client
                // would retry a commit that cannot be repeated ("already
                // staged"). Report it alongside the commit result; the
                // engine keeps serving the previous snapshot and the
                // staged delta stays intact for the next trigger or an
                // explicit refresh.
                match self.refresh() {
                    Ok(outcome) => {
                        fields.push(("refreshed", Json::Bool(true)));
                        self.outcome_fields(&outcome, &mut fields);
                    }
                    Err(e) => {
                        fields.push(("refreshed", Json::Bool(false)));
                        fields.push(("refresh_error", Json::str(e.to_string())));
                    }
                }
            }
        }
        // Emitted after any refresh so clients throttling on the backlog
        // see the post-refresh (drained) counts, not the trigger-time ones.
        fields.push(("pending_objects", Json::Num(self.pending_objects() as f64)));
        fields.push(("pending_links", Json::Num(self.pending_links() as f64)));
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::to_bytes;
    use genclus_core::{GenClus, GenClusConfig};
    use genclus_hin::{HinBuilder, Schema};

    /// The engine.rs fixture: two planted sensor clusters, readings on the
    /// anchors only.
    fn snapshot() -> Snapshot {
        let mut s = Schema::new();
        let sensor = s.add_object_type("sensor");
        let nn = s.add_relation("nn", sensor, sensor);
        let reading = s.add_numerical_attribute("reading");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6)
            .map(|i| b.add_object(sensor, format!("s{i}")))
            .collect();
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                    }
                }
            }
        }
        for x in [-5.0, -5.1, -4.9] {
            b.add_numeric(vs[0], reading, x).unwrap();
        }
        for x in [5.0, 5.1, 4.9] {
            b.add_numeric(vs[3], reading, x).unwrap();
        }
        let graph = b.build().unwrap();
        let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
        let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
        Snapshot::from_bytes(&to_bytes(&graph, &fit.model)).unwrap()
    }

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&Json::Bool(true)),
            "expected success, got {response}"
        );
        v
    }

    #[test]
    fn commit_then_refresh_makes_the_object_queryable() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let v = ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0],["nn","s4",1.0]],"commit":"s6"}"#,
        ));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("s6"));
        assert_eq!(v.get("pending_objects").unwrap().as_usize(), Some(1));
        assert_eq!(e.pending_links(), 2);
        // Not yet part of the snapshot …
        let miss = e.handle_line(r#"{"op":"membership","object":"s6"}"#);
        assert!(miss.contains("\"ok\":false"), "{miss}");

        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(2));
        assert_eq!(r.get("n_objects").unwrap().as_usize(), Some(7));
        assert_eq!(e.refreshes(), 1);
        assert_eq!(e.pending_objects(), 0);

        // … but queryable afterwards, in the cluster it was linked into.
        let m = ok(&e.handle_line(r#"{"op":"membership","object":"s6"}"#));
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        assert_eq!(m.get("cluster"), m3.get("cluster"));
        // Old objects answer too, and top_k sees the new arrival.
        let t = ok(
            &e.handle_line(r#"{"op":"top_k","object":"s4","k":6,"sim":"cosine","type":"sensor"}"#)
        );
        let names: Vec<&str> = t
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.as_arr().unwrap()[0].as_str().unwrap())
            .collect();
        assert!(names.contains(&"s6"), "top_k must rank the new object");
    }

    #[test]
    fn policy_triggers_auto_refresh() {
        let policy = RefreshPolicy {
            max_pending_objects: 2,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"n0"}"#));
        assert!(v.get("refreshed").is_none());
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s1",1.0]],"commit":"n1"}"#));
        assert_eq!(v.get("refreshed"), Some(&Json::Bool(true)));
        assert_eq!(v.get("objects_added").unwrap().as_usize(), Some(2));
        // The reported backlog reflects the post-refresh (drained) state.
        assert_eq!(v.get("pending_objects").unwrap().as_usize(), Some(0));
        assert_eq!(v.get("pending_links").unwrap().as_usize(), Some(0));
        assert_eq!(e.refreshes(), 1);
        assert_eq!(e.pending_objects(), 0);
        ok(&e.handle_line(r#"{"op":"membership","object":"n0"}"#));
        ok(&e.handle_line(r#"{"op":"membership","object":"n1"}"#));
    }

    #[test]
    fn batches_interleave_reads_and_mutations_in_order() {
        let mut e = RefreshableEngine::new(snapshot(), 2, RefreshPolicy::default());
        let lines: Vec<String> = vec![
            r#"{"id":0,"op":"stats"}"#.into(),
            r#"{"id":1,"op":"fold_in","links":[["nn","s3",1.0]],"commit":"x"}"#.into(),
            r#"{"id":2,"op":"membership","object":"x"}"#.into(), // still unknown
            r#"{"id":3,"op":"refresh"}"#.into(),
            r#"{"id":4,"op":"membership","object":"x"}"#.into(), // known now
        ];
        let responses = e.handle_batch(&lines);
        assert_eq!(responses.len(), 5);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                Json::parse(r).unwrap().get("id").unwrap().as_usize(),
                Some(i)
            );
        }
        assert!(responses[2].contains("\"ok\":false"), "{}", responses[2]);
        assert!(responses[4].contains("\"ok\":true"), "{}", responses[4]);
    }

    #[test]
    fn staged_to_staged_commit_links_resolve_within_the_window() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0],["nn","s4",1.0]],"commit":"s6"}"#,
        ));
        // s6 is staged, not served — but a later commit in the same window
        // may link to it; its fold-in uses s6's staged Θ row.
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s6",2.0]],"commit":"s7"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("s7"));
        assert_eq!(e.pending_objects(), 2);
        assert_eq!(e.pending_links(), 3);
        // Plain (uncommitted) fold-ins still resolve against the snapshot
        // only.
        let miss = e.handle_line(r#"{"op":"fold_in","links":[["nn","s6",1.0]]}"#);
        assert!(
            miss.contains("\"ok\":false") && miss.contains("s6"),
            "{miss}"
        );

        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(2));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(3));
        // Both arrivals land in s3's cluster — s7 purely through its
        // staged→staged link.
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        for name in ["s6", "s7"] {
            let m = ok(&e.handle_line(&format!(r#"{{"op":"membership","object":"{name}"}}"#)));
            assert_eq!(m.get("cluster"), m3.get("cluster"), "{name}");
        }
    }

    #[test]
    fn in_links_stage_old_source_links_and_refresh_applies_them() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        // s6 arrives with a link *from* old s3 and *from* old s4 — the
        // old→new direction GraphDelta used to reject — plus one ordinary
        // out-link.
        let v = ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","s3",1.0],["nn","s4",2.0]],"commit":"s6"}"#,
        ));
        assert_eq!(v.get("pending_links").unwrap().as_usize(), Some(3));
        // A second commit can point an in_link at the *staged* s6 too.
        ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s6",1.0]],"in_links":[["nn","s6",1.0]],"commit":"s7"}"#,
        ));
        assert_eq!(e.pending_links(), 5);
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(5));
        assert_eq!(r.get("n_links").unwrap().as_usize(), Some(12 + 5));
        // The refreshed (compacted) snapshot serves everyone.
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        let m6 = ok(&e.handle_line(r#"{"op":"membership","object":"s6"}"#));
        assert_eq!(m6.get("cluster"), m3.get("cluster"));
        // And the old source really carries the new out-links.
        let g = e.engine().graph();
        let s3 = g.object_by_name("s3").unwrap();
        assert_eq!(g.out_links(s3).count(), 3, "s3 gained an old→new link");
        assert!(!g.has_overflow(), "the served snapshot is compacted");
    }

    #[test]
    fn in_link_errors_are_rejected_before_staging() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        for (line, needle) in [
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","ghost",1.0]],"commit":"x"}"#,
                "ghost",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["xx","s3",1.0]],"commit":"x"}"#,
                "unknown relation",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","s3",-1.0]],"commit":"x"}"#,
                "positive",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":"nope","commit":"x"}"#,
                "must be an array",
            ),
        ] {
            let resp = e.handle_line(line);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line} → {resp}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains(needle), "{line} → {err:?} (wanted {needle:?})");
        }
        assert_eq!(e.pending_objects(), 0, "failed commits must stage nothing");
        assert_eq!(e.pending_links(), 0);
    }

    #[test]
    fn commit_errors_are_structured_and_stage_nothing() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        for (line, needle) in [
            (
                r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"s0"}"#,
                "already exists",
            ),
            (
                r#"{"op":"fold_in","values":{"reading":[1.0]},"commit":"y"}"#,
                "cannot infer",
            ),
            (
                r#"{"op":"fold_in","commit":{"name":"y","type":"router"}}"#,
                "unknown object type",
            ),
            (r#"{"op":"fold_in","commit":7}"#, "must be a name"),
            (
                r#"{"op":"fold_in","links":[["nn","ghost",1.0]],"commit":"y"}"#,
                "ghost",
            ),
        ] {
            let resp = e.handle_line(line);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line} → {resp}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains(needle), "{line} → {err:?} (wanted {needle:?})");
        }
        assert_eq!(e.pending_objects(), 0, "failed commits must stage nothing");
        // Duplicate staging is rejected on the second commit.
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"dup"}"#));
        let resp = e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"dup"}"#);
        assert!(resp.contains("already staged"), "{resp}");
        assert_eq!(e.pending_objects(), 1);
    }

    #[test]
    fn duplicate_commit_keys_are_rejected_not_disambiguated() {
        // Regression for the duplicate-key ambiguity: the backslash-aware
        // substring fast path scans raw bytes while `Json::get` used to
        // return the first occurrence, so `{"commit":…,"commit":…}` could
        // be validated against one value and detected via the other. The
        // parser now rejects duplicate keys outright, so the line comes
        // back as a structured error and nothing is staged.
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let resp = e
            .handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"a","commit":"b"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{resp}");
        assert!(
            v.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("duplicate object key"),
            "{resp}"
        );
        assert_eq!(e.pending_objects(), 0);
    }

    #[test]
    fn escaped_mutation_keys_are_not_missed_by_the_fast_path() {
        // `\uXXXX` escapes can spell "commit"/"refresh" without the
        // literal bytes appearing in the line; the substring fast path
        // must not let such lines slip through to the read-only engine
        // (which would silently drop the commit).
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let v =
            ok(&e
                .handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"\u0063ommit":"esc0"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("esc0"));
        assert_eq!(e.pending_objects(), 1);
        let r = ok(&e.handle_line(r#"{"op":"refre\u0073h"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        ok(&e.handle_line(r#"{"op":"membership","object":"esc0"}"#));
    }

    #[test]
    fn failed_auto_refresh_does_not_fail_the_commit() {
        // An unwritable persist path makes the policy-triggered refresh
        // fail; the commit that triggered it must still succeed (it is
        // staged and cannot be retried), with the refresh error reported
        // alongside, the old snapshot still serving, and the staged delta
        // intact for a later refresh.
        let policy = RefreshPolicy {
            max_pending_objects: 1,
            persist_path: Some(PathBuf::from("/nonexistent-genclus-dir/refreshed.gcsnap")),
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"q0"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("q0"));
        assert_eq!(v.get("refreshed"), Some(&Json::Bool(false)));
        assert!(v.get("refresh_error").is_some(), "{v:?}");
        assert_eq!(e.refreshes(), 0);
        assert_eq!(e.pending_objects(), 1, "the staged delta must survive");
        // Still serving the old snapshot.
        ok(&e.handle_line(r#"{"op":"membership","object":"s0"}"#));
        // Fixing the policy lets an explicit refresh drain the backlog.
        e.policy.persist_path = None;
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        ok(&e.handle_line(r#"{"op":"membership","object":"q0"}"#));
    }

    #[test]
    fn refresh_persists_when_asked() {
        let dir = std::env::temp_dir().join("genclus-serve-refresh-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("refreshed.gcsnap");
        std::fs::remove_file(&path).ok();
        let policy = RefreshPolicy {
            persist_path: Some(path.clone()),
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"p0"}"#));
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("persisted"), Some(&Json::Bool(true)));
        // The persisted file is a loadable v1 snapshot of the grown net,
        // and matches what the engine now serves byte for byte.
        let reloaded = Snapshot::load(&path).unwrap();
        assert_eq!(reloaded.graph().n_objects(), 7);
        assert_eq!(reloaded.raw_bytes(), e.engine().snapshot().raw_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn staged_slot_overflow_is_a_structured_bad_request() {
        // The staged-id space is u32; a window that somehow outgrew it must
        // surface a structured error, not an `as`-cast truncation that
        // aliases two staged objects. (Pinned on the helper — 4 billion
        // real commits would take a while.)
        assert_eq!(RefreshableEngine::staged_slot(0).unwrap(), 0);
        assert_eq!(
            RefreshableEngine::staged_slot(u32::MAX as usize).unwrap(),
            u32::MAX
        );
        let err = RefreshableEngine::staged_slot(u32::MAX as usize + 1).unwrap_err();
        match &err {
            ServeError::BadRequest(msg) => {
                assert!(msg.contains("staged-id space is u32"), "{msg}");
                assert!(msg.contains("4294967296"), "counts the window: {msg}");
            }
            other => panic!("expected BadRequest, got {other:?}"),
        }
        assert!(err.to_string().starts_with("bad request:"), "{err}");
    }

    #[test]
    fn crossing_both_thresholds_fires_exactly_one_refresh() {
        // Regression (wire path): one batch whose commits cross the object
        // AND link thresholds — at the same commit, even — must trigger
        // exactly one refresh, not one per threshold.
        let policy = RefreshPolicy {
            max_pending_objects: 2,
            max_pending_links: 3,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let lines: Vec<String> = vec![
            r#"{"id":0,"op":"fold_in","links":[["nn","s0",1.0]],"commit":"d0"}"#.into(),
            // Second commit crosses objects (2 ≥ 2) and links (3 ≥ 3) at once.
            r#"{"id":1,"op":"fold_in","links":[["nn","s1",1.0],["nn","s2",1.0]],"commit":"d1"}"#
                .into(),
            r#"{"id":2,"op":"membership","object":"d1"}"#.into(),
        ];
        let responses = e.handle_batch(&lines);
        let fired: usize = responses
            .iter()
            .filter(|r| r.contains("\"refreshed\":true"))
            .count();
        assert_eq!(fired, 1, "exactly one refresh: {responses:?}");
        assert_eq!(e.refreshes(), 1);
        assert_eq!(e.pending_objects(), 0);
        assert!(responses[2].contains("\"ok\":true"), "{}", responses[2]);
    }

    #[test]
    fn crossing_both_thresholds_starts_exactly_one_background_refit() {
        let policy = RefreshPolicy {
            max_pending_objects: 2,
            max_pending_links: 3,
            background: true,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let lines: Vec<String> = vec![
            r#"{"id":0,"op":"fold_in","links":[["nn","s0",1.0]],"commit":"d0"}"#.into(),
            r#"{"id":1,"op":"fold_in","links":[["nn","s1",1.0],["nn","s2",1.0]],"commit":"d1"}"#
                .into(),
        ];
        let responses = e.handle_batch(&lines);
        let started: usize = responses
            .iter()
            .filter(|r| r.contains("\"refresh_started\":true"))
            .count();
        assert_eq!(started, 1, "exactly one start: {responses:?}");
        e.finish();
        assert_eq!(e.refreshes(), 1, "exactly one refresh landed");
        assert_eq!(e.pending_objects(), 0);
        ok(&e.handle_line(r#"{"op":"membership","object":"d0"}"#));
        ok(&e.handle_line(r#"{"op":"membership","object":"d1"}"#));
    }

    #[test]
    fn background_refresh_serves_old_snapshot_until_the_swap() {
        let policy = RefreshPolicy {
            max_pending_objects: 1,
            background: true,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        // Gate the re-fit so "in flight" is a deterministic state, not a
        // race against a fast fit.
        let gate = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let in_job = gate.clone();
        e.set_background_refit_hook(move || {
            let (lock, cvar) = &*in_job;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        });
        let old_checksum = ok(&e.handle_line(r#"{"op":"stats"}"#))
            .get("checksum")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();

        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"b0"}"#));
        assert_eq!(v.get("refresh_started"), Some(&Json::Bool(true)));
        assert_eq!(v.get("pending_objects").unwrap().as_usize(), Some(0));
        assert!(e.refresh_in_flight());
        assert_eq!(e.in_flight_objects(), 1);

        // Reads during the (gated) re-fit all answer from the old snapshot.
        for _ in 0..5 {
            let s = ok(&e.handle_line(r#"{"op":"stats"}"#));
            assert_eq!(s.get("checksum").unwrap().as_str(), Some(&*old_checksum));
            assert_eq!(s.get("n_objects").unwrap().as_usize(), Some(6));
        }
        let status = ok(&e.handle_line(r#"{"op":"refresh_status"}"#));
        assert_eq!(status.get("mode").unwrap().as_str(), Some("background"));
        assert_eq!(status.get("in_flight"), Some(&Json::Bool(true)));
        assert_eq!(status.get("in_flight_objects").unwrap().as_usize(), Some(1));
        // The staged object is not served yet.
        let miss = e.handle_line(r#"{"op":"membership","object":"b0"}"#);
        assert!(miss.contains("\"ok\":false"), "{miss}");

        // An explicit refresh op while one is in flight does not start a
        // second, and an inline fallback refresh refuses outright.
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("started"), Some(&Json::Bool(false)));
        assert_eq!(r.get("in_flight"), Some(&Json::Bool(true)));
        let err = e.refresh().unwrap_err();
        assert!(err.to_string().contains("in flight"), "{err}");

        // Release the gate; wait lands and swaps the new snapshot in.
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        let status = ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
        assert_eq!(status.get("in_flight"), Some(&Json::Bool(false)));
        let outcome = status.get("last_outcome").unwrap();
        assert_eq!(outcome.get("objects_added").unwrap().as_usize(), Some(1));
        assert_eq!(outcome.get("n_objects").unwrap().as_usize(), Some(7));
        let s = ok(&e.handle_line(r#"{"op":"stats"}"#));
        assert_ne!(s.get("checksum").unwrap().as_str(), Some(&*old_checksum));
        assert_eq!(e.refreshes(), 1);
        ok(&e.handle_line(r#"{"op":"membership","object":"b0"}"#));
    }

    #[test]
    fn commits_mid_flight_stage_into_the_next_window_and_may_cite_inflight_objects() {
        let policy = RefreshPolicy {
            background: true,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let gate = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let in_job = gate.clone();
        e.set_background_refit_hook(move || {
            let (lock, cvar) = &*in_job;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        });
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"w0"}"#));
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("started"), Some(&Json::Bool(true)));

        // Mid-flight commit: stages into the NEXT window, may link to the
        // in-flight w0 by name (its staged Θ row backs the fold-in), and
        // duplicating an in-flight name is rejected.
        let v = ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","w0",1.0]],"in_links":[["nn","s4",1.0]],"commit":"w1"}"#,
        ));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("w1"));
        assert_eq!(e.pending_objects(), 1);
        assert_eq!(e.pending_links(), 2);
        assert_eq!(e.in_flight_objects(), 1);
        let dup = e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"w0"}"#);
        assert!(dup.contains("already being refreshed"), "{dup}");

        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        let status = ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
        assert_eq!(status.get("refreshes").unwrap().as_usize(), Some(1));
        // w0 is served; w1 still pending, staged against the NEW snapshot.
        ok(&e.handle_line(r#"{"op":"membership","object":"w0"}"#));
        assert_eq!(e.pending_objects(), 1);
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("started"), Some(&Json::Bool(true)));
        ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
        assert_eq!(e.refreshes(), 2);
        let m1 = ok(&e.handle_line(r#"{"op":"membership","object":"w1"}"#));
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        assert_eq!(m1.get("cluster"), m3.get("cluster"));
        // The old→new in_link landed: s4 gained an out-link to w1.
        let g = e.engine().graph();
        let s4 = g.object_by_name("s4").unwrap();
        assert_eq!(g.out_links(s4).count(), 3);
    }

    #[test]
    fn failed_background_refit_restores_both_windows_for_retry() {
        let dir = std::env::temp_dir().join("genclus-serve-bg-fail-test");
        std::fs::remove_dir_all(&dir).ok();
        let policy = RefreshPolicy {
            max_pending_objects: 1,
            // Unwritable persist target (parent of a file): the re-fit
            // itself succeeds, persistence fails → the job errors.
            persist_path: Some(PathBuf::from("/dev/null/refreshed.gcsnap")),
            background: true,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let gate = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let in_job = gate.clone();
        e.set_background_refit_hook(move || {
            let (lock, cvar) = &*in_job;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        });
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"f0"}"#));
        assert_eq!(v.get("refresh_started"), Some(&Json::Bool(true)));
        // A second commit lands in the next window while f0 is in flight.
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","f0",1.0]],"commit":"f1"}"#));
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        let status = ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
        assert_eq!(status.get("in_flight"), Some(&Json::Bool(false)));
        let err = status.get("last_error").unwrap().as_str().unwrap();
        assert!(err.contains("I/O") || err.contains("refresh"), "{err}");
        // Nothing lost: old snapshot serves, both windows merged back.
        assert_eq!(e.refreshes(), 0);
        assert_eq!(e.pending_objects(), 2, "f0 and f1 both staged again");
        assert_eq!(e.pending_links(), 2);
        ok(&e.handle_line(r#"{"op":"membership","object":"s0"}"#));
        // Fix the policy; the merged window refreshes in one go.
        e.policy.persist_path = None;
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("started"), Some(&Json::Bool(true)));
        let status = ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
        let outcome = status.get("last_outcome").unwrap();
        assert_eq!(outcome.get("objects_added").unwrap().as_usize(), Some(2));
        for name in ["f0", "f1"] {
            ok(&e.handle_line(&format!(r#"{{"op":"membership","object":"{name}"}}"#)));
        }
    }

    #[test]
    fn chained_refresh_fires_when_the_next_window_crossed_thresholds_mid_flight() {
        let policy = RefreshPolicy {
            max_pending_objects: 1,
            background: true,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let gate = std::sync::Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let in_job = gate.clone();
        e.set_background_refit_hook(move || {
            let (lock, cvar) = &*in_job;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cvar.wait(open).unwrap();
            }
        });
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"c0"}"#));
        assert_eq!(v.get("refresh_started"), Some(&Json::Bool(true)));
        // The next window crosses the threshold while c0 is in flight; the
        // response flags the in-flight re-fit instead of starting another.
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s4",1.0]],"commit":"c1"}"#));
        assert_eq!(v.get("refresh_in_flight"), Some(&Json::Bool(true)));
        assert!(v.get("refresh_started").is_none());
        {
            let (lock, cvar) = &*gate;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        // finish() drains the chained re-fit too: both windows land.
        e.finish();
        assert_eq!(e.refreshes(), 2, "completion chains the due window");
        assert_eq!(e.pending_objects(), 0);
        ok(&e.handle_line(r#"{"op":"membership","object":"c0"}"#));
        ok(&e.handle_line(r#"{"op":"membership","object":"c1"}"#));
    }

    #[test]
    fn refresh_status_in_inline_mode_reports_last_outcome() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let s = ok(&e.handle_line(r#"{"op":"refresh_status"}"#));
        assert_eq!(s.get("mode").unwrap().as_str(), Some("inline"));
        assert_eq!(s.get("in_flight"), Some(&Json::Bool(false)));
        assert!(s.get("last_outcome").is_none());
        assert!(s.get("last_error").is_none());
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"i0"}"#));
        ok(&e.handle_line(r#"{"op":"refresh"}"#));
        let s = ok(&e.handle_line(r#"{"op":"refresh_status"}"#));
        let outcome = s.get("last_outcome").unwrap();
        assert_eq!(outcome.get("objects_added").unwrap().as_usize(), Some(1));
        assert_eq!(s.get("refreshes").unwrap().as_usize(), Some(1));
        // Bad `wait` values are structured errors in both modes.
        let bad = e.handle_line(r#"{"op":"refresh_status","wait":1}"#);
        assert!(bad.contains("must be a boolean"), "{bad}");
    }
}
