//! Warm-start refresh: re-fitting a served model from its own snapshot.
//!
//! Fold-in (PR 2) freezes `(β, γ)` at serving time, so a long-running
//! process drifts as appended objects accumulate: the components were
//! estimated on the *original* population and the strengths on the
//! original topology. This module closes the fit → serve → grow → re-fit
//! loop:
//!
//! * every fold-in request carrying a `"commit"` field is **staged** —
//!   its inferred `Θ` row is kept and its links/observations accumulate in
//!   a [`GraphDelta`] against the current snapshot graph;
//! * a [`RefreshPolicy`] triggers a refresh automatically after
//!   `max_pending_objects` staged objects or `max_pending_links` staged
//!   links (either `0` disables that trigger), and the `refresh` op
//!   triggers one on demand at any time — including with an **empty**
//!   delta, which makes the refresh a pure warm re-fit (and, from a
//!   converged snapshot, a numerical fixed point — property-tested);
//! * a refresh appends the delta to a copy of the snapshot graph, extends
//!   `Θ` with the staged fold-in rows, and runs
//!   [`GenClus::fit_warm`] — EM seeded from the served `(Θ, β, γ)`,
//!   skipping `InitStrategy` entirely, reusing the cached-log kernel and
//!   the persistent worker pool — then **atomically swaps** the new
//!   snapshot into the engine (requests see either the old model or the
//!   new one, never a half-built state) and optionally persists it
//!   ([`RefreshPolicy::persist_path`]; same schema v1, new checksum);
//! * a failed refresh leaves the engine serving the previous snapshot and
//!   the staged delta intact.
//!
//! Wire protocol additions over [`crate::engine`]:
//!
//! * `{"op":"fold_in", …, "commit":"<name>"}` or
//!   `…, "commit":{"name":"<name>","type":"<object type>"}` — fold the
//!   object in *and* stage it for the next refresh. The object type is
//!   taken from `commit.type` or inferred from the link relations' source
//!   type (an error if the request has no links and no explicit type, or
//!   if the links disagree). The response carries the usual fold-in
//!   fields plus `"committed"`, `"pending_objects"`, `"pending_links"`,
//!   and — when the policy fired — the refresh outcome;
//! * `"in_links":[[rel, source-name, w], …]` on a commit — links
//!   **into** the committed object from pre-existing or staged sources
//!   (the DBLP-style "an old author writes the new paper" direction).
//!   They are staged alongside the commit and appended at refresh as
//!   old-source overflow links (see `genclus_hin::graph`); they do not
//!   influence the commit's own fold-in row (Eq. 10 drives a membership
//!   through *out*-links) but do shape the warm re-fit;
//! * `{"op":"refresh"}` — refresh now, regardless of thresholds. Responds
//!   with `"objects_added"`, `"links_added"`, `"outer_iterations"`,
//!   `"em_iterations"`, `"n_objects"`, `"n_links"`, `"persisted"`,
//!   `"refreshes"`.
//!
//! Commit link names — `links` targets and `in_links` sources alike —
//! resolve against the **snapshot ∪ staged** namespace: a commit may
//! reference any served object *or* any object staged earlier in the same
//! refresh window (fold-in for a staged target reads that target's staged
//! `Θ` row). Plain (uncommitted) fold-ins still resolve against the
//! snapshot only — staged objects are not served until the refresh lands.
//! At refresh the pending delta is appended (old-source links extend the
//! graph's overflow segments), the warm re-fit runs on the grown graph —
//! the EM kernels traverse base + overflow bit-identically to a compacted
//! CSR — and the graph is compacted back into a canonical CSR before the
//! new snapshot is serialized.

use crate::engine::{QueryCore, QueryEngine};
use crate::error::ServeError;
use crate::foldin::{FoldInEngine, FoldInRequest, FoldInResult};
use crate::json::Json;
use crate::snapshot::{save_bytes, to_bytes, Snapshot};
use genclus_core::{GenClus, GenClusConfig, GenClusModel};
use genclus_hin::{GraphDelta, ObjectTypeId};
use genclus_stats::simplex::argmax;
use genclus_stats::MembershipMatrix;
use std::path::PathBuf;

/// When and how the engine re-fits from its snapshot.
#[derive(Debug, Clone)]
pub struct RefreshPolicy {
    /// Auto-refresh after this many staged (committed) objects; `0`
    /// disables the object trigger.
    pub max_pending_objects: usize,
    /// Auto-refresh after this many staged links; `0` disables the link
    /// trigger.
    pub max_pending_links: usize,
    /// Outer alternations of the warm re-fit (cluster optimization +
    /// strength learning). At least 2 — the outer loop needs one
    /// iteration to measure a `γ` change.
    pub outer_iters: usize,
    /// EM iteration cap per outer alternation.
    pub em_iters: usize,
    /// EM stopping tolerance (max-abs `Θ` change).
    pub em_tol: f64,
    /// Outer stopping tolerance (max-abs `γ` change).
    pub gamma_tol: f64,
    /// Base configuration of the re-fit. The snapshot format does not
    /// record the original fit's hyperparameters (`σ`, floors, Newton
    /// options), so a deployment fitted with non-default values must pass
    /// its fitting config here — otherwise the warm re-fit silently runs
    /// under paper defaults and the model drifts toward a different fixed
    /// point. `K`, the attribute subset, and the `ε` smoothing are always
    /// realigned with the served model (via
    /// [`GenClusConfig::with_warm_start`]), and the iteration knobs above
    /// override the config's, so a stale value in those fields cannot
    /// break a refresh.
    pub base_config: Option<GenClusConfig>,
    /// Where to persist each refreshed snapshot (atomic temp-file +
    /// rename, like [`crate::snapshot::save`]); `None` keeps refreshes
    /// in-memory only.
    pub persist_path: Option<PathBuf>,
}

impl Default for RefreshPolicy {
    /// Manual-only refresh (no auto triggers), paper-default fit knobs,
    /// no persistence.
    fn default() -> Self {
        Self {
            max_pending_objects: 0,
            max_pending_links: 0,
            outer_iters: 4,
            em_iters: 30,
            em_tol: 1e-4,
            gamma_tol: 1e-4,
            base_config: None,
            persist_path: None,
        }
    }
}

/// What one refresh did.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshOutcome {
    /// Staged objects appended to the network.
    pub objects_added: usize,
    /// Staged links appended to the network.
    pub links_added: usize,
    /// Outer alternations the warm re-fit used.
    pub outer_iterations: usize,
    /// Total EM iterations across all outer alternations.
    pub em_iterations: usize,
    /// Objects of the refreshed snapshot.
    pub n_objects: usize,
    /// Links of the refreshed snapshot.
    pub n_links: usize,
    /// Whether the refreshed snapshot was written to
    /// [`RefreshPolicy::persist_path`].
    pub persisted: bool,
}

/// The staged growth since the last refresh: the delta plus the fold-in
/// `Θ` row of each staged object (in the delta's id order).
struct Pending {
    delta: GraphDelta,
    rows: Vec<Vec<f64>>,
    /// Types of the staged objects, parallel to `rows` (fed to
    /// [`FoldInEngine::with_staged`] so later commits can link to them).
    types: Vec<ObjectTypeId>,
    /// Staged name → index into `rows`/`types`, for O(1) duplicate-commit
    /// rejection *and* staged-target resolution (a linear scan of the
    /// delta's names would make filling a large refresh window quadratic).
    names: std::collections::HashMap<String, u32>,
}

impl Pending {
    fn new(graph: &genclus_hin::HinGraph) -> Self {
        Self {
            delta: GraphDelta::new(graph),
            rows: Vec::new(),
            types: Vec::new(),
            names: std::collections::HashMap::new(),
        }
    }
}

/// A [`QueryEngine`] that can grow: stages committed fold-ins and re-fits
/// itself from its snapshot, warm-started, under a [`RefreshPolicy`].
///
/// Read-only requests delegate to the inner engine (batched across the
/// worker pool, unchanged); mutating requests (`commit`ed fold-ins and
/// `refresh`) are applied in stream order, so a batch's responses reflect
/// a single consistent interleaving.
pub struct RefreshableEngine {
    engine: QueryEngine,
    policy: RefreshPolicy,
    pending: Pending,
    refreshes: usize,
}

impl RefreshableEngine {
    /// Wraps `snapshot` in a refreshable engine with `threads` workers.
    pub fn new(snapshot: Snapshot, threads: usize, policy: RefreshPolicy) -> Self {
        let engine = QueryEngine::new(snapshot, threads);
        let pending = Pending::new(engine.graph());
        Self {
            engine,
            policy,
            pending,
            refreshes: 0,
        }
    }

    /// The current (most recently swapped-in) read engine.
    pub fn engine(&self) -> &QueryEngine {
        &self.engine
    }

    /// The policy in force.
    pub fn policy(&self) -> &RefreshPolicy {
        &self.policy
    }

    /// Staged objects awaiting the next refresh.
    pub fn pending_objects(&self) -> usize {
        self.pending.delta.n_new_objects()
    }

    /// Staged links awaiting the next refresh.
    pub fn pending_links(&self) -> usize {
        self.pending.delta.n_new_links()
    }

    /// Refreshes completed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Stages one new object (programmatic equivalent of a `commit`ed
    /// fold-in): folds it in against the current snapshot, records its
    /// links/observations in the pending delta, and returns the inferred
    /// row. Does **not** auto-trigger a refresh — wire commits do that via
    /// the policy; library callers decide themselves.
    ///
    /// Link targets in `req` may name staged objects of the current
    /// refresh window (ids `graph.n_objects()..`); see
    /// [`Self::commit_with_links`] for links *into* the new object.
    pub fn commit(
        &mut self,
        name: &str,
        object_type: ObjectTypeId,
        req: &FoldInRequest,
    ) -> Result<FoldInResult, ServeError> {
        self.commit_with_links(name, object_type, req, &[])
    }

    /// [`Self::commit`] plus `in_links`: links `(relation, source, weight)`
    /// **into** the new object from pre-existing or staged sources — the
    /// old → new direction the overflow adjacency exists for. They are
    /// staged with the commit (counted by [`Self::pending_links`]) and
    /// appended at refresh; the fold-in row is unaffected (Eq. 10 reads
    /// out-links only).
    pub fn commit_with_links(
        &mut self,
        name: &str,
        object_type: ObjectTypeId,
        req: &FoldInRequest,
        in_links: &[(genclus_hin::RelationId, genclus_hin::ObjectId, f64)],
    ) -> Result<FoldInResult, ServeError> {
        let graph = self.engine.graph();
        if graph.object_by_name(name).is_some() {
            return Err(ServeError::BadRequest(format!(
                "object {name:?} already exists in the snapshot"
            )));
        }
        if self.pending.names.contains_key(name) {
            return Err(ServeError::BadRequest(format!(
                "object {name:?} is already staged for the next refresh"
            )));
        }
        if object_type.index() >= graph.schema().n_object_types() {
            return Err(ServeError::BadRequest(format!(
                "unknown object type {object_type}"
            )));
        }
        // Endpoint-type checks up front so staging below is all-or-nothing
        // (`GraphDelta::add_link` would reject mid-way otherwise).
        let n_known = graph.n_objects() + self.pending.rows.len();
        let type_of = |v: genclus_hin::ObjectId| {
            if v.index() < graph.n_objects() {
                graph.object_type(v)
            } else {
                self.pending.types[v.index() - graph.n_objects()]
            }
        };
        for &(r, _, _) in &req.links {
            if r.index() >= graph.schema().n_relations() {
                return Err(genclus_hin::HinError::UnknownRelation(r).into());
            }
            let def = graph.schema().relation(r);
            if def.source != object_type {
                return Err(ServeError::BadRequest(format!(
                    "relation {:?} does not originate at type {:?}",
                    def.name,
                    graph.schema().object_type_name(object_type)
                )));
            }
        }
        for &(r, source, w) in in_links {
            if r.index() >= graph.schema().n_relations() {
                return Err(genclus_hin::HinError::UnknownRelation(r).into());
            }
            if source.index() >= n_known {
                return Err(genclus_hin::HinError::UnknownObject(source).into());
            }
            if !(w > 0.0 && w.is_finite()) {
                return Err(genclus_hin::HinError::InvalidWeight { weight: w }.into());
            }
            let def = graph.schema().relation(r);
            if def.target != object_type {
                return Err(ServeError::BadRequest(format!(
                    "relation {:?} does not target type {:?}",
                    def.name,
                    graph.schema().object_type_name(object_type)
                )));
            }
            if type_of(source) != def.source {
                return Err(ServeError::BadRequest(format!(
                    "in_link source {source} has the wrong type for relation {:?}",
                    def.name
                )));
            }
        }
        // `assign` validates everything else (targets — snapshot or
        // staged, weights, attribute kinds/vocab, finiteness, purpose
        // membership) before we mutate.
        let folded = FoldInEngine::new(self.engine.snapshot().model(), graph)
            .with_staged(&self.pending.rows, &self.pending.types)
            .assign(req)?;

        let v = self.pending.delta.add_object(object_type, name);
        for &(r, target, w) in &req.links {
            self.pending
                .delta
                .add_link(v, target, r, w)
                .expect("links were validated before staging");
        }
        for &(r, source, w) in in_links {
            self.pending
                .delta
                .add_link(source, v, r, w)
                .expect("in_links were validated before staging");
        }
        for (a, bag) in &req.terms {
            for &(term, count) in bag {
                self.pending
                    .delta
                    .add_term_count(v, *a, term, count)
                    .expect("terms were validated before staging");
            }
        }
        for (a, values) in &req.values {
            for &x in values {
                self.pending
                    .delta
                    .add_numeric(v, *a, x)
                    .expect("values were validated before staging");
            }
        }
        let staged_index = self.pending.rows.len() as u32;
        self.pending.rows.push(folded.theta.clone());
        self.pending.types.push(object_type);
        self.pending.names.insert(name.to_string(), staged_index);
        Ok(folded)
    }

    /// Resolves a commit link name against the snapshot ∪ staged
    /// namespace: served objects win (staged duplicates of served names are
    /// rejected at commit time anyway), then objects staged in the current
    /// refresh window, addressed past the snapshot's id range.
    fn resolve_committed(&self, name: &str) -> Result<genclus_hin::ObjectId, ServeError> {
        let graph = self.engine.graph();
        if let Some(v) = graph.object_by_name(name) {
            return Ok(v);
        }
        if let Some(&i) = self.pending.names.get(name) {
            return Ok(genclus_hin::ObjectId::from_index(
                graph.n_objects() + i as usize,
            ));
        }
        Err(genclus_hin::HinError::UnknownName(name.to_string()).into())
    }

    /// Whether the policy's auto-trigger thresholds are met.
    pub fn due_for_refresh(&self) -> bool {
        let p = &self.policy;
        (p.max_pending_objects > 0 && self.pending_objects() >= p.max_pending_objects)
            || (p.max_pending_links > 0 && self.pending_links() >= p.max_pending_links)
    }

    /// Applies the pending delta (possibly empty) and warm-refits.
    ///
    /// On success the refreshed snapshot replaces the engine's atomically
    /// (and is persisted first if the policy asks for it); on error the
    /// engine keeps serving the previous snapshot and the pending delta is
    /// untouched.
    pub fn refresh(&mut self) -> Result<RefreshOutcome, ServeError> {
        let snapshot = self.engine.snapshot();
        let model = snapshot.model();
        let objects_added = self.pending.delta.n_new_objects();
        let links_added = self.pending.delta.n_new_links();

        // Staleness pre-check: the pending delta must have been staged
        // against exactly this snapshot. `append` would catch the mismatch
        // too, but only after the graph clone — and this invariant breaking
        // means a bug in the swap logic, worth its own message.
        if self.pending.delta.base_objects() != snapshot.graph().n_objects() {
            return Err(ServeError::Refresh(format!(
                "pending delta was staged against a {}-object snapshot but the engine serves {}",
                self.pending.delta.base_objects(),
                snapshot.graph().n_objects()
            )));
        }

        // Old-source links land in the graph's overflow segments; the warm
        // re-fit below runs on the segmented graph directly (the EM kernels
        // traverse base + overflow bit-identically to a compacted CSR).
        let mut graph = snapshot.graph().clone();
        graph.append(self.pending.delta.clone())?;

        // Θ over the grown network: served rows for old objects, the
        // staged fold-in rows for new ones — the warm seed.
        let mut rows: Vec<Vec<f64>> = (0..model.theta.n_objects())
            .map(|i| model.theta.row(i).to_vec())
            .collect();
        rows.extend(self.pending.rows.iter().cloned());
        let warm = GenClusModel {
            theta: MembershipMatrix::from_rows(&rows, model.n_clusters()),
            gamma: model.gamma.clone(),
            components: model.components.clone(),
            attributes: model.attributes.clone(),
            theta_smoothing: model.theta_smoothing,
        };

        let mut cfg = self
            .policy
            .base_config
            .clone()
            .unwrap_or_else(|| GenClusConfig::new(model.n_clusters(), model.attributes.clone()))
            .with_warm_start(&warm);
        cfg.outer_iters = self.policy.outer_iters.max(2);
        cfg.em_iters = self.policy.em_iters;
        cfg.em_tol = self.policy.em_tol;
        cfg.gamma_tol = self.policy.gamma_tol;
        cfg.threads = self.engine.threads();
        let refit = |e: genclus_core::GenClusError| ServeError::Refresh(e.to_string());
        let fit = GenClus::new(cfg)
            .map_err(refit)?
            .fit_warm(&graph, &warm)
            .map_err(refit)?;

        // Compaction trigger: fold the overflow back into a canonical CSR
        // before the snapshot is cut (the codec would canonicalize on the
        // fly anyway; compacting here also hands the swapped-in engine a
        // branch-free base CSR).
        graph.compact();
        let bytes = to_bytes(&graph, &fit.model);
        let persisted = if let Some(path) = &self.policy.persist_path {
            save_bytes(path, &bytes)?;
            true
        } else {
            false
        };
        let snap = Snapshot::from_bytes(&bytes)?;
        let outcome = RefreshOutcome {
            objects_added,
            links_added,
            outer_iterations: fit.history.n_iterations(),
            em_iterations: fit.history.total_em_iterations(),
            n_objects: snap.graph().n_objects(),
            n_links: snap.graph().n_links(),
            persisted,
        };
        // The swap: everything after this point sees the new model.
        self.engine = QueryEngine::new(snap, self.engine.threads());
        self.pending = Pending::new(self.engine.graph());
        self.refreshes += 1;
        Ok(outcome)
    }

    /// One request line → one response line, commit/refresh aware.
    pub fn handle_line(&mut self, line: &str) -> String {
        match Self::parse_mutation(line) {
            Some(req) => self.respond_mutation(&req),
            None => self.engine.handle_line(line),
        }
    }

    /// Handles a batch, preserving order: read-only runs go through the
    /// inner engine's parallel batch path; mutations are applied at their
    /// position in the stream.
    pub fn handle_batch(&mut self, lines: &[String]) -> Vec<String> {
        let mut out = Vec::with_capacity(lines.len());
        let mut run_start = 0usize;
        for (i, line) in lines.iter().enumerate() {
            if let Some(req) = Self::parse_mutation(line) {
                if run_start < i {
                    out.extend(self.engine.handle_batch(&lines[run_start..i]));
                }
                out.push(self.respond_mutation(&req));
                run_start = i + 1;
            }
        }
        if run_start < lines.len() {
            out.extend(self.engine.handle_batch(&lines[run_start..]));
        }
        out
    }

    /// `Some(parsed)` when `line` is a mutating request this layer must
    /// serialize (`refresh`, or `fold_in` with a `commit` field). Parse
    /// failures return `None` — the inner engine produces the error
    /// response.
    fn parse_mutation(line: &str) -> Option<Json> {
        // Fast reject before paying for a parse: a mutation line must
        // contain the literal key/op text somewhere (the inner engine
        // re-parses whatever this layer delegates, so a full parse here
        // would double the parse cost of the read-dominated hot path).
        // False positives — e.g. an object *named* "commit" — just fall
        // through to the precise check below. A backslash disables the
        // fast path entirely: `\uXXXX` escapes can spell "commit" or
        // "refresh" without the literal bytes appearing in the line.
        if !(line.contains('\\') || line.contains("refresh") || line.contains("commit")) {
            return None;
        }
        let req = Json::parse(line).ok()?;
        match req.get("op").and_then(Json::as_str) {
            Some("refresh") => Some(req),
            Some("fold_in") if req.get("commit").is_some() => Some(req),
            _ => None,
        }
    }

    /// Wraps a mutation result in the engine's response envelope.
    fn respond_mutation(&mut self, req: &Json) -> String {
        let result = match req.get("op").and_then(Json::as_str) {
            Some("refresh") => self.op_refresh(),
            _ => self.op_commit(req),
        };
        let mut fields: Vec<(&str, Json)> = Vec::with_capacity(4);
        if let Some(id) = req.get("id") {
            fields.push(("id", id.clone()));
        }
        match result {
            Ok(mut body) => {
                fields.push(("ok", Json::Bool(true)));
                fields.append(&mut body);
            }
            Err(e) => {
                fields.push(("ok", Json::Bool(false)));
                fields.push(("error", Json::str(e.to_string())));
            }
        }
        Json::obj(fields).render()
    }

    fn outcome_fields(&self, outcome: &RefreshOutcome, fields: &mut Vec<(&'static str, Json)>) {
        fields.push(("objects_added", Json::Num(outcome.objects_added as f64)));
        fields.push(("links_added", Json::Num(outcome.links_added as f64)));
        fields.push((
            "outer_iterations",
            Json::Num(outcome.outer_iterations as f64),
        ));
        fields.push(("em_iterations", Json::Num(outcome.em_iterations as f64)));
        fields.push(("n_objects", Json::Num(outcome.n_objects as f64)));
        fields.push(("n_links", Json::Num(outcome.n_links as f64)));
        fields.push(("persisted", Json::Bool(outcome.persisted)));
        fields.push(("refreshes", Json::Num(self.refreshes as f64)));
    }

    fn op_refresh(&mut self) -> Result<Vec<(&'static str, Json)>, ServeError> {
        let outcome = self.refresh()?;
        let mut fields = vec![("refreshed", Json::Bool(true))];
        self.outcome_fields(&outcome, &mut fields);
        Ok(fields)
    }

    /// Decodes the `commit` field: a bare name, or `{name, type}`.
    fn decode_commit(
        &self,
        req: &Json,
        fold_req: &FoldInRequest,
    ) -> Result<(String, ObjectTypeId), ServeError> {
        let commit = req.get("commit").expect("caller checked presence");
        let (name, type_name) = match commit {
            Json::Str(name) => (name.clone(), None),
            Json::Obj(_) => {
                let name = commit
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| {
                        ServeError::BadRequest("\"commit\" object needs a string \"name\"".into())
                    })?
                    .to_string();
                let type_name = commit
                    .get("type")
                    .map(|t| {
                        t.as_str().map(str::to_string).ok_or_else(|| {
                            ServeError::BadRequest("\"commit\".\"type\" must be a string".into())
                        })
                    })
                    .transpose()?;
                (name, type_name)
            }
            _ => {
                return Err(ServeError::BadRequest(
                    "\"commit\" must be a name or {\"name\", \"type\"}".into(),
                ))
            }
        };
        let schema = self.engine.graph().schema();
        let object_type = match type_name {
            Some(t) => schema
                .object_type_by_name(&t)
                .ok_or_else(|| ServeError::BadRequest(format!("unknown object type {t:?}")))?,
            None => {
                // Infer from the link relations' source type; they must
                // all agree and at least one link must exist.
                let mut inferred: Option<ObjectTypeId> = None;
                for &(r, _, _) in &fold_req.links {
                    let src = schema.relation(r).source;
                    match inferred {
                        None => inferred = Some(src),
                        Some(prev) if prev != src => {
                            return Err(ServeError::BadRequest(
                                "link relations disagree on the new object's type; \
                                 pass \"commit\":{\"name\",\"type\"} explicitly"
                                    .into(),
                            ))
                        }
                        Some(_) => {}
                    }
                }
                inferred.ok_or_else(|| {
                    ServeError::BadRequest(
                        "cannot infer the new object's type without links; \
                         pass \"commit\":{\"name\",\"type\"} explicitly"
                            .into(),
                    )
                })?
            }
        };
        Ok((name, object_type))
    }

    fn op_commit(&mut self, req: &Json) -> Result<Vec<(&'static str, Json)>, ServeError> {
        // Commit link names resolve against snapshot ∪ staged — a commit
        // may cite an object staged earlier in this refresh window.
        let fold_req = self
            .engine
            .core()
            .decode_fold_in_with(req, &|n| self.resolve_committed(n))?;
        let in_links = match req.get("in_links") {
            Some(j) => self
                .engine
                .core()
                .decode_link_triples(j, "in_links", &|n| self.resolve_committed(n))?,
            None => Vec::new(),
        };
        let (name, object_type) = self.decode_commit(req, &fold_req)?;
        // Validate the optional ranking parameters *before* staging — a
        // commit is not repeatable, so nothing may fail after it.
        let k = req
            .get("k")
            .map(|kj| {
                kj.as_usize().ok_or_else(|| {
                    ServeError::BadRequest("\"k\" must be a non-negative integer".into())
                })
            })
            .transpose()?;
        let sim = QueryCore::similarity(req)?;
        if k.is_some() {
            let _ = self.engine.core().candidates(req)?;
        }
        let folded = self.commit_with_links(&name, object_type, &fold_req, &in_links)?;
        let mut fields = vec![
            ("theta", Json::nums(&folded.theta)),
            ("cluster", Json::Num(argmax(&folded.theta) as f64)),
            ("iterations", Json::Num(folded.iterations as f64)),
            ("converged", Json::Bool(folded.converged)),
            ("committed", Json::str(name)),
        ];
        // Rank against the *current* (pre-refresh) model — the same one
        // the folded row was inferred under, matching plain fold_in.
        if let Some(k) = k {
            let core = self.engine.core();
            let theta = &self.engine.snapshot().model().theta;
            let ranked = genclus_core::top_k(theta, &folded.theta, core.candidates(req)?, sim, k);
            fields.push(("results", core.ranked_json(&ranked)));
        }
        if self.due_for_refresh() {
            // The commit itself already succeeded and is staged — a refresh
            // failure (e.g. an unwritable persist path) must not turn this
            // response into an error, or the client would retry a commit
            // that cannot be repeated ("already staged"). Report it
            // alongside the commit result; the engine keeps serving the
            // previous snapshot and the staged delta stays intact for the
            // next trigger or an explicit refresh.
            match self.refresh() {
                Ok(outcome) => {
                    fields.push(("refreshed", Json::Bool(true)));
                    self.outcome_fields(&outcome, &mut fields);
                }
                Err(e) => {
                    fields.push(("refreshed", Json::Bool(false)));
                    fields.push(("refresh_error", Json::str(e.to_string())));
                }
            }
        }
        // Emitted after any refresh so clients throttling on the backlog
        // see the post-refresh (drained) counts, not the trigger-time ones.
        fields.push(("pending_objects", Json::Num(self.pending_objects() as f64)));
        fields.push(("pending_links", Json::Num(self.pending_links() as f64)));
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_core::GenClusConfig;
    use genclus_hin::{HinBuilder, Schema};

    /// The engine.rs fixture: two planted sensor clusters, readings on the
    /// anchors only.
    fn snapshot() -> Snapshot {
        let mut s = Schema::new();
        let sensor = s.add_object_type("sensor");
        let nn = s.add_relation("nn", sensor, sensor);
        let reading = s.add_numerical_attribute("reading");
        let mut b = HinBuilder::new(s);
        let vs: Vec<_> = (0..6)
            .map(|i| b.add_object(sensor, format!("s{i}")))
            .collect();
        for group in [[0usize, 1, 2], [3, 4, 5]] {
            for &i in &group {
                for &j in &group {
                    if i != j {
                        b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                    }
                }
            }
        }
        for x in [-5.0, -5.1, -4.9] {
            b.add_numeric(vs[0], reading, x).unwrap();
        }
        for x in [5.0, 5.1, 4.9] {
            b.add_numeric(vs[3], reading, x).unwrap();
        }
        let graph = b.build().unwrap();
        let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
        let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
        Snapshot::from_bytes(&to_bytes(&graph, &fit.model)).unwrap()
    }

    fn ok(response: &str) -> Json {
        let v = Json::parse(response).unwrap();
        assert_eq!(
            v.get("ok"),
            Some(&Json::Bool(true)),
            "expected success, got {response}"
        );
        v
    }

    #[test]
    fn commit_then_refresh_makes_the_object_queryable() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let v = ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0],["nn","s4",1.0]],"commit":"s6"}"#,
        ));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("s6"));
        assert_eq!(v.get("pending_objects").unwrap().as_usize(), Some(1));
        assert_eq!(e.pending_links(), 2);
        // Not yet part of the snapshot …
        let miss = e.handle_line(r#"{"op":"membership","object":"s6"}"#);
        assert!(miss.contains("\"ok\":false"), "{miss}");

        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(2));
        assert_eq!(r.get("n_objects").unwrap().as_usize(), Some(7));
        assert_eq!(e.refreshes(), 1);
        assert_eq!(e.pending_objects(), 0);

        // … but queryable afterwards, in the cluster it was linked into.
        let m = ok(&e.handle_line(r#"{"op":"membership","object":"s6"}"#));
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        assert_eq!(m.get("cluster"), m3.get("cluster"));
        // Old objects answer too, and top_k sees the new arrival.
        let t = ok(
            &e.handle_line(r#"{"op":"top_k","object":"s4","k":6,"sim":"cosine","type":"sensor"}"#)
        );
        let names: Vec<&str> = t
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|e| e.as_arr().unwrap()[0].as_str().unwrap())
            .collect();
        assert!(names.contains(&"s6"), "top_k must rank the new object");
    }

    #[test]
    fn policy_triggers_auto_refresh() {
        let policy = RefreshPolicy {
            max_pending_objects: 2,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"n0"}"#));
        assert!(v.get("refreshed").is_none());
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s1",1.0]],"commit":"n1"}"#));
        assert_eq!(v.get("refreshed"), Some(&Json::Bool(true)));
        assert_eq!(v.get("objects_added").unwrap().as_usize(), Some(2));
        // The reported backlog reflects the post-refresh (drained) state.
        assert_eq!(v.get("pending_objects").unwrap().as_usize(), Some(0));
        assert_eq!(v.get("pending_links").unwrap().as_usize(), Some(0));
        assert_eq!(e.refreshes(), 1);
        assert_eq!(e.pending_objects(), 0);
        ok(&e.handle_line(r#"{"op":"membership","object":"n0"}"#));
        ok(&e.handle_line(r#"{"op":"membership","object":"n1"}"#));
    }

    #[test]
    fn batches_interleave_reads_and_mutations_in_order() {
        let mut e = RefreshableEngine::new(snapshot(), 2, RefreshPolicy::default());
        let lines: Vec<String> = vec![
            r#"{"id":0,"op":"stats"}"#.into(),
            r#"{"id":1,"op":"fold_in","links":[["nn","s3",1.0]],"commit":"x"}"#.into(),
            r#"{"id":2,"op":"membership","object":"x"}"#.into(), // still unknown
            r#"{"id":3,"op":"refresh"}"#.into(),
            r#"{"id":4,"op":"membership","object":"x"}"#.into(), // known now
        ];
        let responses = e.handle_batch(&lines);
        assert_eq!(responses.len(), 5);
        for (i, r) in responses.iter().enumerate() {
            assert_eq!(
                Json::parse(r).unwrap().get("id").unwrap().as_usize(),
                Some(i)
            );
        }
        assert!(responses[2].contains("\"ok\":false"), "{}", responses[2]);
        assert!(responses[4].contains("\"ok\":true"), "{}", responses[4]);
    }

    #[test]
    fn staged_to_staged_commit_links_resolve_within_the_window() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0],["nn","s4",1.0]],"commit":"s6"}"#,
        ));
        // s6 is staged, not served — but a later commit in the same window
        // may link to it; its fold-in uses s6's staged Θ row.
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s6",2.0]],"commit":"s7"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("s7"));
        assert_eq!(e.pending_objects(), 2);
        assert_eq!(e.pending_links(), 3);
        // Plain (uncommitted) fold-ins still resolve against the snapshot
        // only.
        let miss = e.handle_line(r#"{"op":"fold_in","links":[["nn","s6",1.0]]}"#);
        assert!(
            miss.contains("\"ok\":false") && miss.contains("s6"),
            "{miss}"
        );

        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(2));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(3));
        // Both arrivals land in s3's cluster — s7 purely through its
        // staged→staged link.
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        for name in ["s6", "s7"] {
            let m = ok(&e.handle_line(&format!(r#"{{"op":"membership","object":"{name}"}}"#)));
            assert_eq!(m.get("cluster"), m3.get("cluster"), "{name}");
        }
    }

    #[test]
    fn in_links_stage_old_source_links_and_refresh_applies_them() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        // s6 arrives with a link *from* old s3 and *from* old s4 — the
        // old→new direction GraphDelta used to reject — plus one ordinary
        // out-link.
        let v = ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","s3",1.0],["nn","s4",2.0]],"commit":"s6"}"#,
        ));
        assert_eq!(v.get("pending_links").unwrap().as_usize(), Some(3));
        // A second commit can point an in_link at the *staged* s6 too.
        ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s6",1.0]],"in_links":[["nn","s6",1.0]],"commit":"s7"}"#,
        ));
        assert_eq!(e.pending_links(), 5);
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("links_added").unwrap().as_usize(), Some(5));
        assert_eq!(r.get("n_links").unwrap().as_usize(), Some(12 + 5));
        // The refreshed (compacted) snapshot serves everyone.
        let m3 = ok(&e.handle_line(r#"{"op":"membership","object":"s3"}"#));
        let m6 = ok(&e.handle_line(r#"{"op":"membership","object":"s6"}"#));
        assert_eq!(m6.get("cluster"), m3.get("cluster"));
        // And the old source really carries the new out-links.
        let g = e.engine().graph();
        let s3 = g.object_by_name("s3").unwrap();
        assert_eq!(g.out_links(s3).count(), 3, "s3 gained an old→new link");
        assert!(!g.has_overflow(), "the served snapshot is compacted");
    }

    #[test]
    fn in_link_errors_are_rejected_before_staging() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        for (line, needle) in [
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","ghost",1.0]],"commit":"x"}"#,
                "ghost",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["xx","s3",1.0]],"commit":"x"}"#,
                "unknown relation",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":[["nn","s3",-1.0]],"commit":"x"}"#,
                "positive",
            ),
            (
                r#"{"op":"fold_in","links":[["nn","s3",1.0]],"in_links":"nope","commit":"x"}"#,
                "must be an array",
            ),
        ] {
            let resp = e.handle_line(line);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line} → {resp}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains(needle), "{line} → {err:?} (wanted {needle:?})");
        }
        assert_eq!(e.pending_objects(), 0, "failed commits must stage nothing");
        assert_eq!(e.pending_links(), 0);
    }

    #[test]
    fn commit_errors_are_structured_and_stage_nothing() {
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        for (line, needle) in [
            (
                r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"s0"}"#,
                "already exists",
            ),
            (
                r#"{"op":"fold_in","values":{"reading":[1.0]},"commit":"y"}"#,
                "cannot infer",
            ),
            (
                r#"{"op":"fold_in","commit":{"name":"y","type":"router"}}"#,
                "unknown object type",
            ),
            (r#"{"op":"fold_in","commit":7}"#, "must be a name"),
            (
                r#"{"op":"fold_in","links":[["nn","ghost",1.0]],"commit":"y"}"#,
                "ghost",
            ),
        ] {
            let resp = e.handle_line(line);
            let v = Json::parse(&resp).unwrap();
            assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{line} → {resp}");
            let err = v.get("error").unwrap().as_str().unwrap();
            assert!(err.contains(needle), "{line} → {err:?} (wanted {needle:?})");
        }
        assert_eq!(e.pending_objects(), 0, "failed commits must stage nothing");
        // Duplicate staging is rejected on the second commit.
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"dup"}"#));
        let resp = e.handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"dup"}"#);
        assert!(resp.contains("already staged"), "{resp}");
        assert_eq!(e.pending_objects(), 1);
    }

    #[test]
    fn duplicate_commit_keys_are_rejected_not_disambiguated() {
        // Regression for the duplicate-key ambiguity: the backslash-aware
        // substring fast path scans raw bytes while `Json::get` used to
        // return the first occurrence, so `{"commit":…,"commit":…}` could
        // be validated against one value and detected via the other. The
        // parser now rejects duplicate keys outright, so the line comes
        // back as a structured error and nothing is staged.
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let resp = e
            .handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"a","commit":"b"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{resp}");
        assert!(
            v.get("error")
                .unwrap()
                .as_str()
                .unwrap()
                .contains("duplicate object key"),
            "{resp}"
        );
        assert_eq!(e.pending_objects(), 0);
    }

    #[test]
    fn escaped_mutation_keys_are_not_missed_by_the_fast_path() {
        // `\uXXXX` escapes can spell "commit"/"refresh" without the
        // literal bytes appearing in the line; the substring fast path
        // must not let such lines slip through to the read-only engine
        // (which would silently drop the commit).
        let mut e = RefreshableEngine::new(snapshot(), 1, RefreshPolicy::default());
        let v =
            ok(&e
                .handle_line(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"\u0063ommit":"esc0"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("esc0"));
        assert_eq!(e.pending_objects(), 1);
        let r = ok(&e.handle_line(r#"{"op":"refre\u0073h"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        ok(&e.handle_line(r#"{"op":"membership","object":"esc0"}"#));
    }

    #[test]
    fn failed_auto_refresh_does_not_fail_the_commit() {
        // An unwritable persist path makes the policy-triggered refresh
        // fail; the commit that triggered it must still succeed (it is
        // staged and cannot be retried), with the refresh error reported
        // alongside, the old snapshot still serving, and the staged delta
        // intact for a later refresh.
        let policy = RefreshPolicy {
            max_pending_objects: 1,
            persist_path: Some(PathBuf::from("/nonexistent-genclus-dir/refreshed.gcsnap")),
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        let v = ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"q0"}"#));
        assert_eq!(v.get("committed").unwrap().as_str(), Some("q0"));
        assert_eq!(v.get("refreshed"), Some(&Json::Bool(false)));
        assert!(v.get("refresh_error").is_some(), "{v:?}");
        assert_eq!(e.refreshes(), 0);
        assert_eq!(e.pending_objects(), 1, "the staged delta must survive");
        // Still serving the old snapshot.
        ok(&e.handle_line(r#"{"op":"membership","object":"s0"}"#));
        // Fixing the policy lets an explicit refresh drain the backlog.
        e.policy.persist_path = None;
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("objects_added").unwrap().as_usize(), Some(1));
        ok(&e.handle_line(r#"{"op":"membership","object":"q0"}"#));
    }

    #[test]
    fn refresh_persists_when_asked() {
        let dir = std::env::temp_dir().join("genclus-serve-refresh-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("refreshed.gcsnap");
        std::fs::remove_file(&path).ok();
        let policy = RefreshPolicy {
            persist_path: Some(path.clone()),
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(), 1, policy);
        ok(&e.handle_line(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"p0"}"#));
        let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
        assert_eq!(r.get("persisted"), Some(&Json::Bool(true)));
        // The persisted file is a loadable v1 snapshot of the grown net,
        // and matches what the engine now serves byte for byte.
        let reloaded = Snapshot::load(&path).unwrap();
        assert_eq!(reloaded.graph().n_objects(), 7);
        assert_eq!(reloaded.raw_bytes(), e.engine().snapshot().raw_bytes());
        std::fs::remove_file(&path).ok();
    }
}
