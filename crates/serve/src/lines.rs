//! Bounded request-line reading for untrusted streams.
//!
//! The serving loop used to read requests via `BufRead::lines()`, which
//! happily buffers a single newline-free line of any length — one
//! malicious (or simply buggy) peer could balloon resident memory without
//! ever reaching the JSON parser's depth cap. [`CappedLineReader`] is the
//! replacement used by **both** the stdio loop and every TCP connection
//! ([`crate::net`]): it owns a small accumulation buffer, enforces a hard
//! per-line byte cap, and reports an over-long line as a structured
//! [`LineEvent::OverLimit`] *after physically discarding it in bounded
//! chunks* — memory stays O(cap + one read chunk) no matter what the peer
//! sends.
//!
//! The reader also cooperates with socket read timeouts: a
//! `WouldBlock`/`TimedOut` read surfaces as [`LineEvent::Idle`] with any
//! partial line retained, so a connection loop can interleave housekeeping
//! (landing a finished background re-fit, checking the shutdown flag)
//! with blocking reads — no extra threads, no lost bytes.

use std::io::Read;

/// Default request-line cap: 1 MiB. Generous for the JSON-lines protocol
/// (a large commit with hundreds of links is a few KiB) while keeping a
/// hostile peer's memory footprint bounded. Overridden by
/// `--max-request-bytes` on the binary.
pub const DEFAULT_MAX_REQUEST_BYTES: usize = 1 << 20;

/// One step of [`CappedLineReader::next_event`].
#[derive(Debug)]
pub enum LineEvent {
    /// A complete request line (terminator stripped, `\r\n` tolerated).
    Line(String),
    /// A line exceeded the cap. The entire offending line has already
    /// been consumed (discarded in bounded chunks), so the stream is
    /// positioned at the next line; `discarded` is the byte length seen.
    /// The serving layer answers with a structured `BadRequest` — and a
    /// TCP connection additionally closes, since a peer that overflows
    /// the cap once is not negotiating in good faith.
    OverLimit {
        /// Bytes of the over-long line (lower bound: counting stops
        /// with the line, but the line was consumed in full).
        discarded: usize,
    },
    /// A complete line arrived but is not valid UTF-8. Consumed;
    /// answered with a structured error, stream keeps going.
    NotUtf8,
    /// The read timed out (`WouldBlock`/`TimedOut`) — only surfaces on
    /// streams with a read timeout set. Any partial line is retained and
    /// resumes on the next call; the caller uses the gap for
    /// housekeeping.
    Idle,
    /// End of stream (a final unterminated line is returned first).
    Eof,
    /// A non-retriable read error.
    Err(std::io::Error),
}

/// A line reader with a hard per-line byte cap. See the module docs.
pub struct CappedLineReader<R> {
    inner: R,
    /// Bytes read from the stream; `pos..` is the unconsumed tail (at
    /// most `max` + one chunk once compacted).
    buf: Vec<u8>,
    /// Start of the unconsumed region. Consuming a line just advances
    /// this cursor; the buffer is compacted (one `copy_within`) right
    /// before each read, so draining a chunk full of pipelined lines is
    /// linear, not quadratic.
    pos: usize,
    /// Where the newline scan resumes (everything in `pos..scan` was
    /// already scanned without finding one).
    scan: usize,
    max: usize,
    /// `Some(n)` while discarding an over-long line; `n` counts the bytes
    /// dropped so far.
    discarding: Option<usize>,
    eof: bool,
}

impl<R: Read> CappedLineReader<R> {
    /// Wraps `inner` with a per-line cap of `max_line_bytes`.
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            pos: 0,
            scan: 0,
            max: max_line_bytes.max(1),
            discarding: None,
            eof: false,
        }
    }

    /// Extracts `buf[pos..i]` as a line (dropping the `\n` at `i`, and a
    /// preceding `\r` if present), advancing the cursor past it.
    fn take_line(&mut self, i: usize) -> LineEvent {
        let start = self.pos;
        self.pos = i + 1;
        self.scan = self.pos;
        let mut line = &self.buf[start..i];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        match std::str::from_utf8(line) {
            Ok(s) => LineEvent::Line(s.to_owned()),
            Err(_) => LineEvent::NotUtf8,
        }
    }

    /// A complete line already sitting in the buffer, without touching
    /// the underlying stream — how a connection loop coalesces pipelined
    /// requests into one batch without risking a block on the socket.
    /// Over-limit/UTF-8 events surface here too (they must keep their
    /// position in the request order).
    pub fn next_buffered(&mut self) -> Option<LineEvent> {
        if self.discarding.is_some() {
            // Mid-discard: only a fresh read can finish the line.
            return None;
        }
        if let Some(i) = memchr_newline(&self.buf[self.scan..]) {
            let i = self.scan + i;
            let len = i - self.pos;
            if len > self.max {
                self.pos = i + 1;
                self.scan = self.pos;
                return Some(LineEvent::OverLimit { discarded: len });
            }
            return Some(self.take_line(i));
        }
        self.scan = self.buf.len();
        if self.buf.len() - self.pos > self.max {
            // Over the cap with no newline in sight: drop what we hold
            // and switch to discard mode; the event fires once the
            // line's end is actually consumed.
            self.discarding = Some(self.buf.len() - self.pos);
            self.buf.clear();
            self.pos = 0;
            self.scan = 0;
        }
        None
    }

    /// The next event from the stream; blocks (up to the stream's read
    /// timeout, if any) when no complete line is buffered.
    pub fn next_event(&mut self) -> LineEvent {
        let mut chunk = [0u8; 8192];
        loop {
            // Finish an in-progress discard first: scan reads for the
            // newline that ends the over-long line, dropping everything.
            // The cursor is always 0 mid-discard (the buffer was cleared
            // on entry and after each scanned chunk).
            if let Some(dropped) = self.discarding {
                if let Some(i) = memchr_newline(&self.buf) {
                    let total = dropped + i;
                    self.pos = i + 1;
                    self.scan = self.pos;
                    self.discarding = None;
                    return LineEvent::OverLimit { discarded: total };
                }
                self.discarding = Some(dropped + self.buf.len());
                self.buf.clear();
            } else if let Some(event) = self.next_buffered() {
                return event;
            }
            if self.eof {
                return LineEvent::Eof;
            }
            // Reclaim consumed bytes before appending, keeping the buffer
            // bounded by `max` + one chunk.
            if self.pos > 0 {
                self.buf.copy_within(self.pos.., 0);
                self.buf.truncate(self.buf.len() - self.pos);
                self.scan -= self.pos;
                self.pos = 0;
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if let Some(dropped) = self.discarding.take() {
                        return LineEvent::OverLimit { discarded: dropped };
                    }
                    if self.pos < self.buf.len() {
                        // Final unterminated line.
                        let start = self.pos;
                        let len = self.buf.len() - start;
                        self.pos = self.buf.len();
                        self.scan = self.pos;
                        if len > self.max {
                            return LineEvent::OverLimit { discarded: len };
                        }
                        let mut line = &self.buf[start..];
                        if line.last() == Some(&b'\r') {
                            line = &line[..line.len() - 1];
                        }
                        return match std::str::from_utf8(line) {
                            Ok(s) => LineEvent::Line(s.to_owned()),
                            Err(_) => LineEvent::NotUtf8,
                        };
                    }
                    return LineEvent::Eof;
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    std::io::ErrorKind::Interrupted => continue,
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                        return LineEvent::Idle
                    }
                    _ => return LineEvent::Err(e),
                },
            }
        }
    }
}

/// `memchr(b'\n')` without the dependency.
fn memchr_newline(haystack: &[u8]) -> Option<usize> {
    haystack.iter().position(|&b| b == b'\n')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(bytes: &[u8], max: usize) -> CappedLineReader<std::io::Cursor<Vec<u8>>> {
        CappedLineReader::new(std::io::Cursor::new(bytes.to_vec()), max)
    }

    #[test]
    fn plain_lines_round_trip() {
        let mut r = reader(b"alpha\nbeta\r\n\ngamma", 64);
        for expected in ["alpha", "beta", "", "gamma"] {
            match r.next_event() {
                LineEvent::Line(l) => assert_eq!(l, expected),
                other => panic!("expected {expected:?}, got {other:?}"),
            }
        }
        assert!(matches!(r.next_event(), LineEvent::Eof));
        assert!(matches!(r.next_event(), LineEvent::Eof));
    }

    #[test]
    fn over_long_line_is_discarded_not_buffered() {
        // 10 MiB line against a 1 KiB cap: the reader must never hold
        // more than cap + chunk bytes.
        let mut input = vec![b'x'; 10 << 20];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let mut r = reader(&input, 1024);
        match r.next_event() {
            LineEvent::OverLimit { discarded } => assert_eq!(discarded, 10 << 20),
            other => panic!("expected OverLimit, got {other:?}"),
        }
        assert!(
            r.buf.capacity() <= 1024 + 2 * 8192,
            "buffer ballooned to {}",
            r.buf.capacity()
        );
        match r.next_event() {
            LineEvent::Line(l) => assert_eq!(l, "ok"),
            other => panic!("expected the next line, got {other:?}"),
        }
    }

    #[test]
    fn exactly_max_passes_one_more_fails() {
        let max = 8;
        let mut input = vec![b'a'; max];
        input.push(b'\n');
        input.extend(vec![b'b'; max + 1]);
        input.push(b'\n');
        let mut r = reader(&input, max);
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l.len() == max));
        assert!(matches!(
            r.next_event(),
            LineEvent::OverLimit { discarded } if discarded == max + 1
        ));
        assert!(matches!(r.next_event(), LineEvent::Eof));
    }

    #[test]
    fn unterminated_final_line_is_returned() {
        let mut r = reader(b"tail", 64);
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "tail"));
        assert!(matches!(r.next_event(), LineEvent::Eof));
        // … and an unterminated over-long tail is still rejected.
        let mut r = reader(&[b'x'; 100], 10);
        assert!(matches!(r.next_event(), LineEvent::OverLimit { .. }));
        assert!(matches!(r.next_event(), LineEvent::Eof));
    }

    #[test]
    fn invalid_utf8_is_a_structured_event() {
        let mut r = reader(b"\xff\xfe\n{\"op\":\"stats\"}\n", 64);
        assert!(matches!(r.next_event(), LineEvent::NotUtf8));
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l.contains("stats")));
    }

    #[test]
    fn next_buffered_drains_pipelined_lines_without_reading() {
        struct PanicAfterFirst {
            data: Option<Vec<u8>>,
        }
        impl Read for PanicAfterFirst {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let d = self.data.take().expect("next_buffered must not read");
                out[..d.len()].copy_from_slice(&d);
                Ok(d.len())
            }
        }
        let mut r = CappedLineReader::new(
            PanicAfterFirst {
                data: Some(b"a\nb\nc\n".to_vec()),
            },
            64,
        );
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "a"));
        assert!(matches!(r.next_buffered(), Some(LineEvent::Line(l)) if l == "b"));
        assert!(matches!(r.next_buffered(), Some(LineEvent::Line(l)) if l == "c"));
        assert!(r.next_buffered().is_none());
    }

    #[test]
    fn idle_preserves_partial_lines() {
        struct TimeoutThen {
            step: usize,
        }
        impl Read for TimeoutThen {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                self.step += 1;
                match self.step {
                    1 => {
                        out[..4].copy_from_slice(b"part");
                        Ok(4)
                    }
                    2 => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
                    _ => {
                        out[..4].copy_from_slice(b"ial\n");
                        Ok(4)
                    }
                }
            }
        }
        let mut r = CappedLineReader::new(TimeoutThen { step: 0 }, 64);
        assert!(matches!(r.next_event(), LineEvent::Idle));
        assert!(matches!(r.next_event(), LineEvent::Line(l) if l == "partial"));
    }
}
