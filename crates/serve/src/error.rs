//! Error type of the serving layer.

use genclus_hin::HinError;

/// Everything that can go wrong while persisting, loading, or querying a
/// fitted model.
#[derive(Debug)]
pub enum ServeError {
    /// Filesystem-level failure while reading or writing a snapshot.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot.
    BadMagic,
    /// The snapshot's schema version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The payload checksum does not match the header — truncation or
    /// corruption.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as read.
        got: u64,
    },
    /// The file is shorter than its header claims.
    Truncated,
    /// Structural decoding failed after the checksum passed (an internal
    /// inconsistency a well-formed writer cannot produce). The string names
    /// the section.
    Malformed(&'static str),
    /// A network-level validation failure (unknown names, bad weights,
    /// endpoint type mismatches) — untrusted request input.
    Hin(HinError),
    /// A request was syntactically or semantically invalid.
    BadRequest(String),
    /// A warm-start re-fit (snapshot refresh) failed. The string carries
    /// the underlying algorithm error; the serving engine keeps answering
    /// from the previous snapshot when this happens.
    Refresh(String),
    /// The commit write-ahead log is unusable, does not belong to the
    /// snapshot it was paired with, or an append/truncation failed. A WAL
    /// error on the commit path fails the commit *before* anything is
    /// staged — an acknowledged commit is always on disk.
    Wal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "snapshot I/O error: {e}"),
            Self::BadMagic => write!(f, "not a GenClus snapshot (bad magic)"),
            Self::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot schema version {found} is not supported (this build reads ≤ {supported})"
            ),
            Self::ChecksumMismatch { expected, got } => write!(
                f,
                "snapshot payload checksum {got:#018x} does not match header {expected:#018x} \
                 (corrupt or truncated file)"
            ),
            Self::Truncated => write!(f, "snapshot file is shorter than its header claims"),
            Self::Malformed(section) => {
                write!(f, "snapshot payload is malformed in the {section} section")
            }
            Self::Hin(e) => write!(f, "{e}"),
            Self::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Self::Refresh(msg) => write!(f, "snapshot refresh failed: {msg}"),
            Self::Wal(msg) => write!(f, "commit WAL error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Hin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<HinError> for ServeError {
    fn from(e: HinError) -> Self {
        Self::Hin(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = ServeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("version 9"));
        let e = ServeError::Hin(HinError::UnknownName("ghost".into()));
        assert!(e.to_string().contains("ghost"));
        let e = ServeError::ChecksumMismatch {
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("checksum"));
    }
}
