//! Append-only commit write-ahead log: no acknowledged commit is lost.
//!
//! The refresh layer (PRs 4–5) acknowledges commits that exist only in an
//! in-memory [`GraphDelta`](genclus_hin::GraphDelta) until the next
//! refresh lands — a crash in between silently loses exactly the
//! incremental arrivals the model is meant to absorb. This module closes
//! that gap with the classic snapshot-plus-log discipline:
//!
//! * every accepted commit is encoded as a [`CommitRecord`] and appended +
//!   **fsynced before the ack is written** — the durability contract is
//!   *ack ⇒ replayable*: once a client has seen `"ok":true` for a commit,
//!   a restart with the same `--wal`/snapshot pair rebuilds that commit's
//!   staged object, links, `in_links`, observations, **and its fold-in
//!   `Θ` row bit-identically** (the row is logged as IEEE-754 bit
//!   patterns and adopted verbatim at replay, never re-derived);
//! * a refresh that **persists** its snapshot truncates the log
//!   atomically (write new log, fsync, rename, fsync the directory —
//!   [`Wal::truncate`]). The double-buffered staging windows map to log
//!   segments: a landed background re-fit drops only the in-flight
//!   window's records and rewrites the next window's verbatim, rebased
//!   onto the new snapshot. A refresh that does *not* persist truncates
//!   nothing — the log keeps covering every commit since the on-disk
//!   snapshot;
//! * recovery ([`Wal::open_or_create`]) is adversarial: a torn tail — a
//!   partial final record, a bad checksum, an undecodable payload — is
//!   physically truncated to the longest valid prefix and *reported*, not
//!   fatal (an fsynced-then-acked record can never be in the torn region).
//!   A log paired with the wrong snapshot, or ahead of it, is a hard
//!   error. A log *behind* the snapshot (crash between the snapshot
//!   persist and the log truncation) is healed by skipping records whose
//!   objects the snapshot already contains, after verifying each
//!   skipped record's name/id/type against the graph.
//!
//! # File format
//!
//! Same byte discipline as the snapshot codec ([`genclus_stats::bytesio`]:
//! everything little-endian, composite items padded to 8 bytes):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GCWAL\0\0\0"
//! 8       4     WAL schema version (u32 LE), currently 1
//! 12      4     reserved (0)
//! 16      8     payload checksum of the base snapshot (u64 LE)
//! 24      8     object count of the base snapshot (u64 LE)
//! 32      8     reserved (0)
//! 40      …     records
//! ```
//!
//! Each record is framed as
//!
//! ```text
//! [u64 payload length] [u64 FNV-1a 64 of payload] [payload] [pad to 8]
//! ```
//!
//! and the payload is a [`CommitRecord`]: absolute object id, object
//! type, name, out-links, in-links, categorical/numerical observations,
//! and the folded `Θ` row. Ids are **absolute** (they continue the base
//! snapshot's id space in append order), which is what lets a recovery
//! whose snapshot is *ahead* of the log identify already-applied records,
//! and lets [`Wal::truncate`] rewrite surviving records verbatim.
//!
//! # Fault injection
//!
//! [`Wal::set_kill_hook`] (`#[doc(hidden)]`, the same test-seam idiom as
//! `RefitWorker::set_refit_hook`) lets a property test simulate a crash at
//! every durability-relevant point ([`KILL_SITES`]); the harness then
//! recovers from the on-disk state and asserts it equals the
//! uninterrupted run byte-identically.

use crate::error::ServeError;
use crate::snapshot::atomic_write_durable;
use genclus_hin::{AttributeId, HinGraph, ObjectId, ObjectTypeId, RelationId};
use genclus_stats::bytesio::{fnv1a64, pad8, put_f64, put_f64_slice, put_str, put_u64, ByteReader};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First 8 bytes of every commit log.
pub const WAL_MAGIC: [u8; 8] = *b"GCWAL\0\0\0";
/// Current (highest readable) WAL schema version.
pub const WAL_VERSION: u32 = 1;
/// Bytes before the first record.
pub const WAL_HEADER_LEN: usize = 40;
/// Bytes of the per-record frame (length + checksum) before the payload.
pub const FRAME_LEN: usize = 16;

/// Every fault-injection site [`Wal::set_kill_hook`] consults, in the
/// order they can fire along the commit/truncate paths.
pub const KILL_SITES: [&str; 7] = [
    "append:before-write",
    "append:torn-write",
    "append:before-sync",
    "append:acked-never-sent",
    "truncate:start",
    "truncate:tmp-synced",
    "truncate:renamed",
];

/// One logged commit — everything needed to rebuild its staged state
/// without re-running fold-in.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitRecord {
    /// Absolute id of the committed object: the base snapshot's object
    /// count plus this record's position in the log (append order).
    pub object: ObjectId,
    /// Object type of the commit.
    pub object_type: ObjectTypeId,
    /// Unique name of the commit.
    pub name: String,
    /// Out-links `(relation, target, weight)`; targets may be served or
    /// earlier-staged objects (absolute ids).
    pub links: Vec<(RelationId, ObjectId, f64)>,
    /// Links *into* the commit `(relation, source, weight)`.
    pub in_links: Vec<(RelationId, ObjectId, f64)>,
    /// Categorical observations `(attribute, [(term, count)])`.
    pub terms: Vec<(AttributeId, Vec<(u32, f64)>)>,
    /// Numerical observations `(attribute, [value])`.
    pub values: Vec<(AttributeId, Vec<f64>)>,
    /// The fold-in `Θ` row the ack reported, as exact bit patterns.
    pub theta: Vec<f64>,
}

impl CommitRecord {
    /// Serializes the record payload (unframed).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + self.name.len()
                + 24 * (self.links.len() + self.in_links.len())
                + 8 * self.theta.len(),
        );
        put_u64(&mut out, self.object.index() as u64);
        put_u64(&mut out, self.object_type.index() as u64);
        put_str(&mut out, &self.name);
        put_u64(&mut out, self.links.len() as u64);
        for &(r, v, w) in &self.links {
            put_u64(&mut out, r.index() as u64);
            put_u64(&mut out, v.index() as u64);
            put_f64(&mut out, w);
        }
        put_u64(&mut out, self.in_links.len() as u64);
        for &(r, v, w) in &self.in_links {
            put_u64(&mut out, r.index() as u64);
            put_u64(&mut out, v.index() as u64);
            put_f64(&mut out, w);
        }
        put_u64(&mut out, self.terms.len() as u64);
        for (a, bag) in &self.terms {
            put_u64(&mut out, a.index() as u64);
            put_u64(&mut out, bag.len() as u64);
            for &(term, count) in bag {
                put_u64(&mut out, u64::from(term));
                put_f64(&mut out, count);
            }
        }
        put_u64(&mut out, self.values.len() as u64);
        for (a, vals) in &self.values {
            put_u64(&mut out, a.index() as u64);
            put_f64_slice(&mut out, vals);
        }
        put_f64_slice(&mut out, &self.theta);
        out
    }

    /// Decodes a record payload; `None` on any structural violation
    /// (non-panicking — log bytes are operator-supplied input). Trailing
    /// bytes after the record are a violation too.
    pub fn from_bytes(payload: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(payload);
        let object = id32(r.u64()?)?;
        let object_type = id16_type(r.u64()?)?;
        let name = r.str()?;
        let mut links = Vec::new();
        for _ in 0..r.count(24)? {
            links.push((id16_rel(r.u64()?)?, id32(r.u64()?)?, r.f64()?));
        }
        let mut in_links = Vec::new();
        for _ in 0..r.count(24)? {
            in_links.push((id16_rel(r.u64()?)?, id32(r.u64()?)?, r.f64()?));
        }
        let mut terms = Vec::new();
        for _ in 0..r.count(16)? {
            let a = id16_attr(r.u64()?)?;
            let mut bag = Vec::new();
            for _ in 0..r.count(16)? {
                bag.push((u32::try_from(r.u64()?).ok()?, r.f64()?));
            }
            terms.push((a, bag));
        }
        let mut values = Vec::new();
        for _ in 0..r.count(16)? {
            values.push((id16_attr(r.u64()?)?, r.f64_slice()?));
        }
        let theta = r.f64_slice()?;
        (r.remaining() == 0).then_some(Self {
            object,
            object_type,
            name,
            links,
            in_links,
            terms,
            values,
            theta,
        })
    }
}

// Checked id decoders: `from_index` asserts on overflow, and a corrupt log
// must surface as `None`, never as a panic.
fn id32(raw: u64) -> Option<ObjectId> {
    u32::try_from(raw)
        .ok()
        .map(|i| ObjectId::from_index(i as usize))
}
fn id16_type(raw: u64) -> Option<ObjectTypeId> {
    u16::try_from(raw)
        .ok()
        .map(|i| ObjectTypeId::from_index(i as usize))
}
fn id16_rel(raw: u64) -> Option<RelationId> {
    u16::try_from(raw)
        .ok()
        .map(|i| RelationId::from_index(i as usize))
}
fn id16_attr(raw: u64) -> Option<AttributeId> {
    u16::try_from(raw)
        .ok()
        .map(|i| AttributeId::from_index(i as usize))
}

/// What [`Wal::open_or_create`] recovered from an existing log.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Records to replay into the staging window, in append order. Their
    /// ids are sequential starting at the paired graph's object count.
    pub records: Vec<CommitRecord>,
    /// The raw payload bytes of `records`, parallel to it — kept so a
    /// later [`Wal::truncate`] can rewrite surviving records verbatim.
    pub payloads: Vec<Vec<u8>>,
    /// Valid records dropped because the snapshot already contains their
    /// objects (a refresh persisted before the log was truncated).
    pub skipped: usize,
    /// Bytes of a torn tail that were physically truncated off the file
    /// (0 when the log ended cleanly).
    pub torn_bytes: usize,
}

/// Summary of a [`crate::refresh::RefreshableEngine::with_wal`] recovery —
/// what the binary logs at startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecoveryReport {
    /// Commits replayed into the staging window.
    pub replayed: usize,
    /// Valid records skipped because the snapshot already held them.
    pub skipped: usize,
    /// Torn-tail bytes truncated off the log.
    pub torn_bytes: usize,
    /// Whether the log was rewritten (rebased) during recovery.
    pub rewritten: bool,
}

/// The open commit log: an append handle plus the base-snapshot binding
/// from its header.
pub struct Wal {
    path: PathBuf,
    file: std::fs::File,
    base_checksum: u64,
    base_objects: usize,
    n_records: usize,
    /// Current valid file length — the append offset, tracked so a failed
    /// in-place append can be chopped back off with `set_len`.
    len: u64,
    /// `Some` once a write failure left the on-disk state untrusted; every
    /// later append fails fast (recovery at restart is the safe
    /// continuation).
    poisoned: Option<String>,
    kill: Option<Arc<dyn Fn(&'static str) -> bool + Send + Sync>>,
}

impl Wal {
    /// Creates a fresh (empty) log bound to a base snapshot, durably —
    /// header written via temp-file + fsync + rename, so a crash right
    /// after creation leaves a recoverable empty log.
    pub fn create(
        path: &Path,
        base_checksum: u64,
        base_objects: usize,
    ) -> Result<Self, ServeError> {
        let header = Self::header_bytes(base_checksum, base_objects);
        atomic_write_durable(path, &header, &mut |_| Ok(()))?;
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            base_checksum,
            base_objects,
            n_records: 0,
            len: header.len() as u64,
            poisoned: None,
            kill: None,
        })
    }

    fn header_bytes(base_checksum: u64, base_objects: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(WAL_HEADER_LEN);
        out.extend_from_slice(&WAL_MAGIC);
        out.extend_from_slice(&WAL_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        put_u64(&mut out, base_checksum);
        put_u64(&mut out, base_objects as u64);
        put_u64(&mut out, 0);
        debug_assert_eq!(out.len(), WAL_HEADER_LEN);
        out
    }

    /// Opens an existing log for replay against the snapshot `graph` was
    /// decoded from (whose payload checksum is `base_checksum`), or
    /// creates a fresh one. See the module docs for the recovery rules:
    /// torn tails are truncated and reported, already-applied records are
    /// verified and skipped, and genuine mismatches (wrong file, wrong
    /// snapshot, log ahead of snapshot) are hard [`ServeError::Wal`]
    /// errors.
    pub fn open_or_create(
        path: &Path,
        base_checksum: u64,
        graph: &HinGraph,
    ) -> Result<(Self, WalReplay), ServeError> {
        let n = graph.n_objects();
        if !path.exists() {
            return Ok((Self::create(path, base_checksum, n)?, WalReplay::default()));
        }
        let bytes = std::fs::read(path)?;
        if bytes.len() < WAL_HEADER_LEN {
            // A crash during creation can leave a partial header; nothing
            // was ever acked against it, so recover as an empty log.
            let torn = bytes.len();
            let wal = Self::create(path, base_checksum, n)?;
            return Ok((
                wal,
                WalReplay {
                    torn_bytes: torn,
                    ..WalReplay::default()
                },
            ));
        }
        if bytes[..8] != WAL_MAGIC {
            return Err(ServeError::Wal(format!(
                "{} is not a genclus commit WAL (bad magic)",
                path.display()
            )));
        }
        // lint: allow(no-panic-in-serve) -- infallible by construction: a 4-byte range always converts to [u8; 4]
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        // lint: allow(no-panic-in-serve) -- infallible by construction: an 8-byte range always converts to [u8; 8]
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let version = u32_at(8);
        if version == 0 || version > WAL_VERSION {
            return Err(ServeError::Wal(format!(
                "WAL schema version {version} is not supported (this build reads ≤ {WAL_VERSION})"
            )));
        }
        if u32_at(12) != 0 || u64_at(32) != 0 {
            return Err(ServeError::Wal(
                "reserved WAL header fields are nonzero".into(),
            ));
        }
        let log_checksum = u64_at(16);
        let log_base = usize::try_from(u64_at(24))
            .map_err(|_| ServeError::Wal("WAL header base-object count overflows".into()))?;
        if log_base > n {
            return Err(ServeError::Wal(format!(
                "the log was written against a {log_base}-object snapshot but the loaded \
                 snapshot holds {n} — wrong or stale snapshot for this WAL"
            )));
        }
        if log_base == n && log_checksum != base_checksum {
            return Err(ServeError::Wal(format!(
                "the log binds to snapshot checksum {log_checksum:#018x} but the loaded \
                 snapshot's is {base_checksum:#018x} — this WAL belongs to a different snapshot"
            )));
        }

        let mut records = Vec::new();
        let mut payloads = Vec::new();
        let mut skipped = 0usize;
        let mut next_id = log_base;
        let mut pos = WAL_HEADER_LEN;
        let torn_at = loop {
            let rem = bytes.len() - pos;
            if rem == 0 {
                break None;
            }
            if rem < FRAME_LEN {
                break Some(pos);
            }
            let Ok(len) = usize::try_from(u64_at(pos)) else {
                break Some(pos);
            };
            let checksum = u64_at(pos + 8);
            let Some(padded) = len.checked_next_multiple_of(8) else {
                break Some(pos);
            };
            if padded > rem - FRAME_LEN {
                break Some(pos);
            }
            let payload = &bytes[pos + FRAME_LEN..pos + FRAME_LEN + len];
            if fnv1a64(payload) != checksum {
                break Some(pos);
            }
            let Some(record) = CommitRecord::from_bytes(payload) else {
                break Some(pos);
            };
            // Checksum-valid records must obey the log's own invariants;
            // a violation here is a wrong pairing, not a torn tail.
            if record.object.index() != next_id {
                return Err(ServeError::Wal(format!(
                    "record {} carries object id {} where {} was expected — the log does \
                     not continue its base snapshot's id space",
                    records.len() + skipped,
                    record.object.index(),
                    next_id
                )));
            }
            if record.object.index() < n {
                // Already folded into the snapshot by a refresh that
                // persisted before the log could be truncated. Verify the
                // claim before dropping the record.
                if graph.object_by_name(&record.name) != Some(record.object)
                    || graph.object_type(record.object) != record.object_type
                {
                    return Err(ServeError::Wal(format!(
                        "record for {:?} (id {}) does not match the snapshot's object — \
                         this WAL belongs to a different snapshot lineage",
                        record.name,
                        record.object.index()
                    )));
                }
                skipped += 1;
            } else {
                payloads.push(payload.to_vec());
                records.push(record);
            }
            next_id += 1;
            pos += FRAME_LEN + padded;
        };

        // Physically truncate a torn tail so later appends extend the
        // valid prefix, not the garbage.
        let (valid_len, torn_bytes) = match torn_at {
            Some(p) => (p, bytes.len() - p),
            None => (bytes.len(), 0),
        };
        if torn_bytes > 0 {
            let f = std::fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_len as u64)?;
            f.sync_all()?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        let wal = Self {
            path: path.to_path_buf(),
            file,
            base_checksum: log_checksum,
            base_objects: log_base,
            n_records: skipped + records.len(),
            len: valid_len as u64,
            poisoned: None,
            kill: None,
        };
        Ok((
            wal,
            WalReplay {
                records,
                payloads,
                skipped,
                torn_bytes,
            },
        ))
    }

    /// Appends one framed record and fsyncs before returning — the
    /// durability point of a commit. On a write/sync failure the torn
    /// bytes are chopped back off (`set_len`); if even that fails, the
    /// log is poisoned and every later append fails fast, because
    /// appending after an in-place torn record would corrupt the log
    /// *mid-file* — recovery would then truncate acked records after it.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), ServeError> {
        if let Some(why) = &self.poisoned {
            return Err(ServeError::Wal(format!(
                "the commit log is disabled after an earlier write failure ({why}); \
                 restart to recover"
            )));
        }
        let mut frame = Vec::with_capacity(FRAME_LEN + payload.len() + 7);
        put_u64(&mut frame, payload.len() as u64);
        put_u64(&mut frame, fnv1a64(payload));
        frame.extend_from_slice(payload);
        pad8(&mut frame);
        if self.kill("append:before-write") {
            return Err(Self::killed("append:before-write"));
        }
        if self.kill("append:torn-write") {
            // Simulated crash halfway through the frame: a prefix reaches
            // the disk and the process dies (no repair runs).
            let _ = self.file.write_all(&frame[..frame.len() / 2]);
            let _ = self.file.sync_data();
            return Err(Self::killed("append:torn-write"));
        }
        if let Err(e) = self.write_frame(&frame) {
            let msg = e.to_string();
            if self
                .file
                .set_len(self.len)
                .and_then(|()| self.file.sync_data())
                .is_err()
            {
                self.poisoned = Some(msg.clone());
            }
            return Err(ServeError::Wal(format!("commit log append failed: {msg}")));
        }
        self.len += frame.len() as u64;
        self.n_records += 1;
        if self.kill("append:acked-never-sent") {
            // The record is durable but the ack never leaves the process —
            // the client-retry side of the durability contract.
            return Err(Self::killed("append:acked-never-sent"));
        }
        Ok(())
    }

    fn write_frame(&mut self, frame: &[u8]) -> std::io::Result<()> {
        self.file.write_all(frame)?;
        if self.kill("append:before-sync") {
            // Simulated crash after the write, before the sync: the
            // caller's repair path treats the unsynced bytes as lost.
            return Err(std::io::Error::other("killed at append:before-sync"));
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Atomically replaces the log with one holding only `keep` (raw
    /// record payloads, typically the still-staged window), rebased onto
    /// the snapshot identified by `base_checksum`/`base_objects`: write
    /// new log, fsync, rename, fsync the directory. Called after a
    /// refresh *persisted* its snapshot. Any failure poisons the handle —
    /// past the rename this handle may point at a replaced inode, and
    /// recovery at the next startup is the safe continuation.
    pub fn truncate(
        &mut self,
        base_checksum: u64,
        base_objects: usize,
        keep: &[Vec<u8>],
    ) -> Result<(), ServeError> {
        if let Some(why) = &self.poisoned {
            return Err(ServeError::Wal(format!(
                "the commit log is disabled after an earlier write failure ({why}); \
                 restart to recover"
            )));
        }
        if self.kill("truncate:start") {
            return Err(Self::killed("truncate:start"));
        }
        let mut bytes = Self::header_bytes(base_checksum, base_objects);
        for payload in keep {
            put_u64(&mut bytes, payload.len() as u64);
            put_u64(&mut bytes, fnv1a64(payload));
            bytes.extend_from_slice(payload);
            pad8(&mut bytes);
        }
        let kill = self.kill.clone();
        let result = atomic_write_durable(&self.path, &bytes, &mut |site| {
            let wal_site: &'static str = match site {
                "tmp-synced" => "truncate:tmp-synced",
                "renamed" => "truncate:renamed",
                _ => return Ok(()),
            };
            if kill.as_ref().is_some_and(|h| h(wal_site)) {
                return Err(std::io::Error::other(format!(
                    "killed at {wal_site} (fault injection)"
                )));
            }
            Ok(())
        });
        if let Err(e) = result {
            let msg = e.to_string();
            self.poisoned = Some(msg.clone());
            return Err(ServeError::Wal(format!(
                "commit log truncation failed: {msg}"
            )));
        }
        self.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        self.base_checksum = base_checksum;
        self.base_objects = base_objects;
        self.n_records = keep.len();
        self.len = bytes.len() as u64;
        Ok(())
    }

    /// Records currently in the log (including any the snapshot already
    /// absorbed but the log still carries).
    pub fn n_records(&self) -> usize {
        self.n_records
    }

    /// Object count of the base snapshot this log's header binds to.
    pub fn base_objects(&self) -> usize {
        self.base_objects
    }

    /// Payload checksum of the base snapshot this log's header binds to.
    pub fn base_checksum(&self) -> u64 {
        self.base_checksum
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Test seam: `hook(site)` is consulted at every durability-relevant
    /// point ([`KILL_SITES`]); returning `true` makes the operation fail
    /// as if the process had died there (partial writes included). Not
    /// part of the public API contract.
    #[doc(hidden)]
    pub fn set_kill_hook(&mut self, hook: impl Fn(&'static str) -> bool + Send + Sync + 'static) {
        self.kill = Some(Arc::new(hook));
    }

    fn kill(&self, site: &'static str) -> bool {
        self.kill.as_ref().is_some_and(|h| h(site))
    }

    fn killed(site: &str) -> ServeError {
        ServeError::Wal(format!("killed at {site} (fault injection)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> CommitRecord {
        CommitRecord {
            object: ObjectId::from_index(7),
            object_type: ObjectTypeId::from_index(1),
            name: "new-sensor".into(),
            links: vec![
                (RelationId::from_index(0), ObjectId::from_index(3), 1.5),
                (RelationId::from_index(2), ObjectId::from_index(6), 0.25),
            ],
            in_links: vec![(RelationId::from_index(1), ObjectId::from_index(0), 2.0)],
            terms: vec![(AttributeId::from_index(0), vec![(4, 2.0), (9, 1.0)])],
            values: vec![(AttributeId::from_index(1), vec![-0.0, 3.25])],
            theta: vec![0.125, 0.875, -0.0],
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        let rec = record();
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len() % 8, 0, "payloads stay 8-aligned");
        let back = CommitRecord::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
        // -0.0 survives as a bit pattern, not a value.
        assert_eq!(back.theta[2].to_bits(), (-0.0f64).to_bits());
        assert_eq!(back.values[0].1[0].to_bits(), (-0.0f64).to_bits());
        // Re-serialization is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn record_decode_rejects_garbage_without_panicking() {
        let bytes = record().to_bytes();
        // Every strict prefix fails to decode (or decodes to None).
        for cut in 0..bytes.len() {
            assert!(
                CommitRecord::from_bytes(&bytes[..cut]).is_none(),
                "prefix of {cut} bytes decoded"
            );
        }
        // Trailing bytes are rejected too.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(CommitRecord::from_bytes(&long).is_none());
        // Absurd counts are rejected cheaply by the count() guard.
        let mut bad = bytes.clone();
        let name_end = 16 + 8 + 16; // object + type + len-prefixed "new-sensor" padded
        bad[name_end..name_end + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(CommitRecord::from_bytes(&bad).is_none());
    }

    #[test]
    fn header_is_fixed_size() {
        assert_eq!(Wal::header_bytes(0xdead_beef, 42).len(), WAL_HEADER_LEN);
    }
}
