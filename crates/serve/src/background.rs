//! The off-thread half of a double-buffered refresh.
//!
//! [`crate::refresh::RefreshableEngine`] originally ran its warm re-fit
//! inline on the serving thread, so every policy-triggered refresh froze
//! query traffic for the full EM wall time. This module moves the heavy
//! part — append the staged delta, run [`GenClus::fit_warm`], compact,
//! serialize, optionally persist, then decode + index the refreshed
//! snapshot into a ready [`QueryEngine`] — onto a dedicated one-worker
//! [`WorkerPool`] via [`WorkerPool::submit`], and hands the finished
//! engine back through a [`JobHandle`] the serving thread polls between
//! requests. Reads keep answering from the old engine the whole time; the
//! swap itself is a plain move on the serving thread (everything
//! O(snapshot) — checksum, decode, candidate indexes, pool spawn — was
//! paid on the worker).
//!
//! The split of responsibilities:
//!
//! * [`RefitInput`] owns everything the job needs (a compacted copy of the
//!   served graph, the staged [`GraphDelta`], the warm-seed model, the
//!   resolved config) so the job borrows nothing from the engine;
//! * [`run_refit`] is the *pure* re-fit: both the inline path and the
//!   background worker call it, which is what keeps the two modes
//!   byte-identical in what they produce and how they fail;
//! * [`RefitWorker`] wraps the pool + at-most-one in-flight handle, maps a
//!   panicked job into a [`ServeError::Refresh`] (the worker thread
//!   survives), and exposes poll/join so the engine decides *when* the
//!   swap happens.
//!
//! Failure contract (same as the inline path): a job that errors returns
//! the [`ServeError`]; the engine keeps serving the old snapshot and
//! restores the staged window, so nothing committed is lost.

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::metrics::ServeMetrics;
use crate::refresh::RefreshOutcome;
use crate::snapshot::{save_bytes, to_bytes, Snapshot};
use genclus_core::pool::{JobHandle, WorkerPool};
use genclus_core::{GenClus, GenClusConfig, GenClusModel};
use genclus_hin::{GraphDelta, HinGraph};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Everything one warm re-fit consumes, owned — the job runs on another
/// thread and must not borrow the serving engine.
pub(crate) struct RefitInput {
    /// Compacted copy of the served snapshot's graph (snapshots are always
    /// canonical, so no compaction is needed before the append).
    pub graph: HinGraph,
    /// The refresh window being applied.
    pub delta: GraphDelta,
    /// Warm seed over the grown network: served `Θ` rows extended with the
    /// staged fold-in rows, plus the served `(β, γ)`.
    pub warm: GenClusModel,
    /// Fully resolved re-fit configuration (already aligned via
    /// `with_warm_start`, iteration knobs applied).
    pub cfg: GenClusConfig,
    /// Persist the refreshed snapshot here before reporting success.
    pub persist_path: Option<PathBuf>,
    /// Worker threads of the replacement [`QueryEngine`].
    pub threads: usize,
    /// The process-lifetime registry: the replacement engine is wired to
    /// it (counters stay cumulative across the swap), and the warm EM
    /// streams its per-iteration trace events into it mid-re-fit.
    pub metrics: Arc<ServeMetrics>,
}

/// What a finished re-fit hands back to the serving thread.
pub(crate) struct RefitOutput {
    /// The replacement engine, fully built (snapshot decoded, candidate
    /// indexes rebuilt, query pool spawned) on the re-fit thread — the
    /// serving thread's swap is a plain move, not O(snapshot) work.
    pub engine: QueryEngine,
    /// The bookkeeping the wire protocol reports.
    pub outcome: RefreshOutcome,
    /// Wall time of the re-fit itself (append → fit → snapshot → engine).
    pub seconds: f64,
}

/// Appends `delta`, warm re-fits, compacts, serializes, (optionally)
/// persists, and builds the replacement [`QueryEngine`] — the entire
/// refresh except the swap itself. Pure with respect to the serving
/// engine: both the inline refresh and the background worker run exactly
/// this.
pub(crate) fn run_refit(input: RefitInput) -> Result<RefitOutput, ServeError> {
    let RefitInput {
        mut graph,
        delta,
        warm,
        cfg,
        persist_path,
        threads,
        metrics,
    } = input;
    let started = Instant::now();
    // The warm EM reports its convergence live: one `em_outer_iteration`
    // trace event per outer iteration lands in the shared registry, so a
    // concurrent `{"op":"metrics"}` watches the re-fit progress.
    let cfg = if metrics.is_enabled() {
        cfg.with_trace(metrics.clone())
    } else {
        cfg
    };
    let objects_added = delta.n_new_objects();
    let links_added = delta.n_new_links();

    // Old-source links land in the graph's overflow segments; the warm
    // re-fit runs on the segmented graph directly (the EM kernels traverse
    // base + overflow bit-identically to a compacted CSR).
    graph.append(delta)?;
    let refit = |e: genclus_core::GenClusError| ServeError::Refresh(e.to_string());
    let fit = GenClus::new(cfg)
        .map_err(refit)?
        .fit_warm(&graph, &warm)
        .map_err(refit)?;

    // Compaction trigger: fold the overflow back into a canonical CSR
    // before the snapshot is cut (the codec would canonicalize on the fly
    // anyway; compacting here also hands the swapped-in engine a
    // branch-free base CSR).
    graph.compact();
    let bytes = to_bytes(&graph, &fit.model);
    let persisted = if let Some(path) = &persist_path {
        save_bytes(path, &bytes)?;
        true
    } else {
        false
    };
    // Revive and index the snapshot here, off the serving thread: the
    // checksum pass, the graph/model decode, the candidate-index rebuild,
    // and (threads > 1) the query-pool spawn are all O(snapshot) — paying
    // them at swap time would reintroduce a serving stall proportional to
    // the model size.
    let snap = Snapshot::from_bytes(&bytes)?;
    let outcome = RefreshOutcome {
        objects_added,
        links_added,
        outer_iterations: fit.history.n_iterations(),
        em_iterations: fit.history.total_em_iterations(),
        n_objects: snap.graph().n_objects(),
        n_links: snap.graph().n_links(),
        persisted,
    };
    Ok(RefitOutput {
        engine: QueryEngine::with_metrics(snap, threads, metrics),
        outcome,
        seconds: started.elapsed().as_secs_f64(),
    })
}

/// A dedicated one-worker pool running at most one re-fit at a time.
///
/// Owning its pool (rather than sharing the query engine's) is load-
/// bearing: a re-fit takes the full warm-EM wall time, and parking it on a
/// query worker would stall every batch dispatched to that worker — the
/// exact latency bug this module removes.
pub struct RefitWorker {
    pool: WorkerPool,
    handle: Option<JobHandle<Result<RefitOutput, ServeError>>>,
    /// Test seam: runs at the start of the job, on the worker thread.
    /// Lets deterministic tests hold a re-fit "in flight" on a gate.
    hook: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl Default for RefitWorker {
    fn default() -> Self {
        Self::new()
    }
}

impl RefitWorker {
    /// Spawns the worker thread (idle until [`Self::start`]).
    pub fn new() -> Self {
        Self {
            pool: WorkerPool::new(1),
            handle: None,
            hook: None,
        }
    }

    /// Whether a re-fit is currently queued or running.
    pub fn in_flight(&self) -> bool {
        self.handle.is_some()
    }

    /// Hands `input` to the worker. The caller must have checked
    /// [`Self::in_flight`] — two concurrent re-fits of one engine would
    /// race on the same base snapshot.
    pub(crate) fn start(&mut self, input: RefitInput) {
        assert!(
            self.handle.is_none(),
            "a background re-fit is already in flight"
        );
        let hook = self.hook.clone();
        self.handle = Some(self.pool.submit(move || {
            if let Some(hook) = &hook {
                hook();
            }
            run_refit(input)
        }));
    }

    fn unpack(
        result: std::thread::Result<Result<RefitOutput, ServeError>>,
    ) -> Result<RefitOutput, ServeError> {
        result.unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "re-fit worker panicked".to_string());
            Err(ServeError::Refresh(format!(
                "background re-fit panicked: {msg}"
            )))
        })
    }

    /// Non-blocking: `Some(result)` once the in-flight re-fit finished
    /// (clearing it), `None` while it is still running or none was
    /// started.
    pub(crate) fn poll(&mut self) -> Option<Result<RefitOutput, ServeError>> {
        let done = self.handle.as_ref()?.try_join()?;
        self.handle = None;
        Some(Self::unpack(done))
    }

    /// Blocks until the in-flight re-fit finishes; `None` when none is in
    /// flight.
    pub(crate) fn join(&mut self) -> Option<Result<RefitOutput, ServeError>> {
        let handle = self.handle.take()?;
        Some(Self::unpack(handle.join()))
    }

    /// Test seam: `hook` runs at the start of every subsequent job, on the
    /// worker thread. Not part of the public API contract.
    #[doc(hidden)]
    pub fn set_refit_hook(&mut self, hook: impl Fn() + Send + Sync + 'static) {
        self.hook = Some(Arc::new(hook));
    }
}
