//! The versioned snapshot file format.
//!
//! A snapshot persists everything `fit` produced — the network topology
//! with its indexes and the fitted model (`Θ`, `γ`, `β`, `ε`) — in one
//! dependency-free binary file:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"GENCLUS\0"
//! 8       4     schema version (u32 LE), currently 2
//! 12      4     reserved (0)
//! 16      8     payload length in bytes (u64 LE)
//! 24      8     FNV-1a 64 checksum of the payload (u64 LE)
//! 32      8     absolute file offset of the Θ data (u64 LE, 8-aligned)
//! 40      8     Θ rows (u64 LE)
//! 48      8     Θ columns (u64 LE)
//! 56      8     reserved (0)
//! 64      …     payload: [HinGraph::to_bytes][pad to 8][GenClusModel::to_bytes]
//! ```
//!
//! All multi-byte values are little-endian (see [`genclus_stats::bytesio`]).
//! The writer is deterministic, so save → load → save is **byte-identical**
//! (a property test asserts this), and the header carries the `Θ` geometry
//! so a reader can serve membership rows straight out of the file bytes —
//! [`Snapshot::theta_view`] is an mmap-style zero-copy `&[f64]` into the
//! load buffer, no per-entry decoding — while [`Snapshot::into_parts`] /
//! the decoded [`Snapshot::model`] cover mutation-friendly use.
//!
//! Compatibility policy: the version is bumped whenever the payload layout
//! changes; readers reject newer versions loudly
//! ([`ServeError::UnsupportedVersion`]) instead of misreading them, and CI
//! keeps a committed fixture snapshot per historical version to prove older
//! files keep loading. Version history:
//!
//! * **1** — per-object length-prefixed name strings. Still readable: the
//!   header dispatches the graph decode to [`HinGraph::from_bytes_v1`].
//! * **2** — names travel as the interned arena (one `u32` offset table +
//!   one byte blob); writers always emit this layout.

use crate::error::ServeError;
use genclus_core::GenClusModel;
use genclus_hin::HinGraph;
use genclus_stats::bytesio::{fnv1a64, pad8, ByteReader};
use std::io::Read as _;
use std::path::Path;

/// First 8 bytes of every snapshot.
pub const MAGIC: [u8; 8] = *b"GENCLUS\0";
/// Current (highest readable) snapshot schema version.
pub const SCHEMA_VERSION: u32 = 2;
/// Bytes before the payload.
pub const HEADER_LEN: usize = 64;

/// A byte buffer whose storage is 8-aligned, so `f64` payload sections can
/// be viewed in place.
pub struct AlignedBytes {
    /// Backing storage; `u64` elements guarantee 8-byte alignment.
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// Copies `bytes` into aligned storage.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut a = Self::zeroed(bytes.len());
        a.as_mut_slice().copy_from_slice(bytes);
        a
    }

    /// Zero-filled aligned buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// The bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialized bytes and u8 has
        // no alignment requirement.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// Mutable access (used only while filling the buffer).
    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as above; exclusive borrow of self guarantees no aliasing.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }

    /// Buffer length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Serializes a fitted model plus its network into snapshot bytes.
pub fn to_bytes(graph: &HinGraph, model: &GenClusModel) -> Vec<u8> {
    let mut payload = Vec::new();
    graph.to_bytes(&mut payload);
    pad8(&mut payload);
    let model_start = payload.len();
    let theta_rel = model.to_bytes(&mut payload);
    let theta_offset = HEADER_LEN + model_start + theta_rel;
    debug_assert_eq!(theta_offset % 8, 0, "Θ payload must be 8-aligned");

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&(theta_offset as u64).to_le_bytes());
    out.extend_from_slice(&(model.theta.n_objects() as u64).to_le_bytes());
    out.extend_from_slice(&(model.theta.n_clusters() as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    out.extend_from_slice(&payload);
    out
}

/// Writes a snapshot file (atomically: a temp file in the same directory is
/// renamed over the target, so readers never observe a half-written
/// snapshot).
pub fn save(path: &Path, graph: &HinGraph, model: &GenClusModel) -> Result<(), ServeError> {
    save_bytes(path, &to_bytes(graph, model))
}

/// Atomically and **durably** writes pre-serialized snapshot bytes (the
/// temp-file + rename dance of [`save`]) — used by the refresh path, which
/// already has the bytes in hand from re-loading the swapped-in snapshot.
///
/// Durability discipline: the temp file is `sync_all`ed *before* the
/// rename and the parent directory is fsynced *after* it. Rename-without-
/// fsync only guarantees readers never see a half-written file through the
/// filesystem cache; on power loss the journal may replay the rename
/// before the data blocks land, leaving a renamed-but-empty snapshot. The
/// directory fsync makes the rename itself survive the same way.
pub fn save_bytes(path: &Path, bytes: &[u8]) -> Result<(), ServeError> {
    atomic_write_durable(path, bytes, &mut |_| Ok(()))
}

/// [`save_bytes`] with a caller-chosen temp-name tag. The tag keeps
/// *same-process* concurrent writers to one target distinct (the pid in
/// the temp name already separates processes): the serve binary's
/// periodic metrics dumper and its final-dump-at-exit can overlap, and
/// renames of complete files are safe in either order while a shared temp
/// path would not be. This is the only sanctioned way to persist
/// non-snapshot artifacts — routing through it keeps every persisted file
/// on the same fsync-before-rename discipline (`durable-io-containment`).
pub fn save_bytes_tagged(path: &Path, bytes: &[u8], tag: &str) -> Result<(), ServeError> {
    atomic_write_durable_tagged(path, bytes, tag, &mut |_| Ok(()))
}

/// The shared atomic + durable write: temp file in the same directory →
/// `write_all` → `sync_all` → `rename` → parent-directory fsync. `stage`
/// is called after each durability checkpoint (`"tmp-synced"`,
/// `"renamed"`, `"dir-synced"`) and may return an error to abort between
/// steps — the injectable seam the save-path sync test and the WAL's
/// fault-injection harness both use; production callers pass a no-op.
pub(crate) fn atomic_write_durable(
    path: &Path,
    bytes: &[u8],
    stage: &mut dyn FnMut(&'static str) -> std::io::Result<()>,
) -> Result<(), ServeError> {
    atomic_write_durable_tagged(path, bytes, ".tmp", stage)
}

fn atomic_write_durable_tagged(
    path: &Path,
    bytes: &[u8],
    tag: &str,
    stage: &mut dyn FnMut(&'static str) -> std::io::Result<()>,
) -> Result<(), ServeError> {
    use std::io::Write as _;
    // Appended (not `with_extension`) so `model.gcsnap` and `model.bak` in
    // one directory do not collide on the same temp file.
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| {
            ServeError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            ))
        })?
        .to_os_string();
    tmp_name.push(format!("{tag}-{}~", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    stage("tmp-synced")?;
    std::fs::rename(&tmp, path)?;
    stage("renamed")?;
    sync_parent_dir(path)?;
    stage("dir-synced")?;
    Ok(())
}

/// Fsyncs the directory holding `path`, making a just-completed rename
/// durable. A no-op on targets where directories cannot be opened.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

/// The parsed header of a snapshot buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Snapshot schema version.
    pub version: u32,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// FNV-1a 64 checksum of the payload.
    pub checksum: u64,
    /// Absolute offset of the Θ data.
    pub theta_offset: usize,
    /// Θ rows.
    pub theta_rows: usize,
    /// Θ columns.
    pub theta_cols: usize,
}

impl Header {
    /// Parses and validates the fixed-size header (magic, version, length
    /// coherence, Θ geometry). Does **not** hash the payload; see
    /// [`Header::verify_checksum`].
    pub fn parse(bytes: &[u8]) -> Result<Self, ServeError> {
        if bytes.len() < HEADER_LEN {
            return Err(ServeError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(ServeError::BadMagic);
        }
        // lint: allow(no-panic-in-serve) -- infallible by construction: a 4-byte range always converts to [u8; 4]
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        // lint: allow(no-panic-in-serve) -- infallible by construction: an 8-byte range always converts to [u8; 8]
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        // Header sizes are u64 on disk; on a 32-bit target an `as usize`
        // cast would silently truncate (wrap) an attacker-controlled field
        // past every later bound check. Reject anything unrepresentable.
        let usize_at = |o: usize| {
            usize::try_from(u64_at(o)).map_err(|_| ServeError::Malformed("header field overflow"))
        };
        let version = u32_at(8);
        if version == 0 || version > SCHEMA_VERSION {
            return Err(ServeError::UnsupportedVersion {
                found: version,
                supported: SCHEMA_VERSION,
            });
        }
        // The reserved fields must be zero: they are outside the payload
        // checksum, so without this check corruption there would load
        // silently (and re-serialize differently, breaking byte identity).
        if u32_at(12) != 0 || u64_at(56) != 0 {
            return Err(ServeError::Malformed("reserved header fields"));
        }
        let header = Self {
            version,
            payload_len: usize_at(16)?,
            checksum: u64_at(24),
            theta_offset: usize_at(32)?,
            theta_rows: usize_at(40)?,
            theta_cols: usize_at(48)?,
        };
        // Every arithmetic step below is checked: the header fields are
        // attacker-controlled (not covered by the payload checksum), and a
        // wrapping add would let an absurd offset slip past the bound.
        if HEADER_LEN
            .checked_add(header.payload_len)
            .is_none_or(|expected| bytes.len() != expected)
        {
            return Err(ServeError::Truncated);
        }
        let theta_bytes = header
            .theta_rows
            .checked_mul(header.theta_cols)
            .and_then(|n| n.checked_mul(8))
            .ok_or(ServeError::Malformed("header Θ geometry"))?;
        let theta_end = header
            .theta_offset
            .checked_add(theta_bytes)
            .ok_or(ServeError::Malformed("header Θ geometry"))?;
        if !header.theta_offset.is_multiple_of(8)
            || header.theta_offset < HEADER_LEN
            || theta_end > bytes.len()
        {
            return Err(ServeError::Malformed("header Θ geometry"));
        }
        Ok(header)
    }

    /// Verifies the payload checksum of `bytes` (the full file buffer).
    pub fn verify_checksum(&self, bytes: &[u8]) -> Result<(), ServeError> {
        let got = fnv1a64(&bytes[HEADER_LEN..]);
        if got != self.checksum {
            return Err(ServeError::ChecksumMismatch {
                expected: self.checksum,
                got,
            });
        }
        Ok(())
    }
}

/// A fully loaded snapshot: the raw aligned buffer plus the decoded
/// network and model.
pub struct Snapshot {
    bytes: AlignedBytes,
    header: Header,
    graph: HinGraph,
    model: GenClusModel,
}

impl Snapshot {
    /// Parses, checksums, and decodes a snapshot from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ServeError> {
        let header = Header::parse(bytes)?;
        header.verify_checksum(bytes)?;
        let mut r = ByteReader::new(&bytes[HEADER_LEN..]);
        // Version dispatch: the header selects the graph decoder. The model
        // section is layout-stable across both versions.
        let graph = match header.version {
            1 => HinGraph::from_bytes_v1(&mut r),
            _ => HinGraph::from_bytes(&mut r),
        }
        .ok_or(ServeError::Malformed("network"))?;
        r.align8().ok_or(ServeError::Malformed("padding"))?;
        let model = GenClusModel::from_bytes(&mut r).ok_or(ServeError::Malformed("model"))?;
        // Cross-checks between header, graph, and model. The kind/shape
        // check per (attribute, component) pair matters because the EM and
        // fold-in kernels match on the pair and treat a mismatch as
        // unreachable.
        let kinds_match = model.attributes.len() == model.components.len()
            && model
                .attributes
                .iter()
                .zip(&model.components)
                .all(|(&a, comp)| {
                    a.index() < graph.schema().n_attributes()
                        && match (&graph.schema().attribute(a).kind, comp) {
                            (
                                genclus_hin::AttributeKind::Categorical { vocab_size },
                                genclus_core::ClusterComponents::Categorical(c),
                            ) => c.vocab_size() == *vocab_size,
                            (
                                genclus_hin::AttributeKind::Numerical,
                                genclus_core::ClusterComponents::Gaussian(_),
                            ) => true,
                            _ => false,
                        }
                });
        if model.theta.n_objects() != graph.n_objects()
            || model.theta.n_objects() != header.theta_rows
            || model.theta.n_clusters() != header.theta_cols
            || model.gamma.len() != graph.schema().n_relations()
            || !kinds_match
        {
            return Err(ServeError::Malformed("model/network cross-check"));
        }
        Ok(Self {
            bytes: AlignedBytes::copy_from(bytes),
            header,
            graph,
            model,
        })
    }

    /// Reads and decodes a snapshot file.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        let mut f = std::fs::File::open(path)?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// The parsed header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// The decoded network.
    pub fn graph(&self) -> &HinGraph {
        &self.graph
    }

    /// The decoded model.
    pub fn model(&self) -> &GenClusModel {
        &self.model
    }

    /// Consumes the snapshot, yielding the owned network and model.
    pub fn into_parts(self) -> (HinGraph, GenClusModel) {
        (self.graph, self.model)
    }

    /// The raw file bytes (aligned).
    pub fn raw_bytes(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Zero-copy view of the `Θ` matrix straight out of the file buffer:
    /// row-major, `theta_rows × theta_cols`, no per-entry decode and no
    /// extra allocation. The buffer is 8-aligned by construction and the
    /// writer 8-aligns the Θ payload, so the reinterpretation is exact.
    /// The geometry product was validated with checked arithmetic (and
    /// `usize::try_from` on every header size) in [`Header::parse`], so
    /// the multiplication below cannot overflow or escape the buffer.
    ///
    /// The format is little-endian; on a big-endian target this view is not
    /// available (use [`Snapshot::model`], whose decoded matrix is
    /// endian-correct everywhere).
    #[cfg(target_endian = "little")]
    pub fn theta_view(&self) -> &[f64] {
        let n = self.header.theta_rows * self.header.theta_cols;
        let raw =
            &self.bytes.as_slice()[self.header.theta_offset..self.header.theta_offset + n * 8];
        // SAFETY: the slice starts 8-aligned (aligned buffer + offset
        // validated to be a multiple of 8) and covers exactly n f64s; any
        // bit pattern is a valid f64.
        let (prefix, mid, suffix) = unsafe { raw.align_to::<f64>() };
        debug_assert!(prefix.is_empty() && suffix.is_empty());
        mid
    }

    /// One membership row out of the zero-copy view.
    #[cfg(target_endian = "little")]
    pub fn theta_row(&self, v: usize) -> &[f64] {
        let k = self.header.theta_cols;
        &self.theta_view()[v * k..(v + 1) * k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_core::attr_model::{ClusterComponents, GaussianComponents};
    use genclus_hin::{HinBuilder, Schema};
    use genclus_stats::MembershipMatrix;

    fn tiny() -> (HinGraph, GenClusModel) {
        let mut s = Schema::new();
        let t = s.add_object_type("sensor");
        let nn = s.add_relation("nn", t, t);
        let reading = s.add_numerical_attribute("reading");
        let mut b = HinBuilder::new(s);
        let v0 = b.add_object(t, "s0");
        let v1 = b.add_object(t, "s1");
        let v2 = b.add_object(t, "s2");
        b.add_link(v0, v1, nn, 1.0).unwrap();
        b.add_link(v1, v2, nn, 2.0).unwrap();
        b.add_numeric(v0, reading, -1.0).unwrap();
        b.add_numeric(v2, reading, 1.0).unwrap();
        let graph = b.build().unwrap();
        let model = GenClusModel {
            theta: MembershipMatrix::from_rows(
                &[vec![0.9, 0.1], vec![0.5, 0.5], vec![0.2, 0.8]],
                2,
            ),
            gamma: vec![1.25],
            components: vec![ClusterComponents::Gaussian(
                GaussianComponents::from_params(vec![-1.0, 1.0], vec![0.5, 0.5], 1e-6),
            )],
            attributes: vec![reading],
            theta_smoothing: 0.05,
        };
        (graph, model)
    }

    #[test]
    fn round_trip_and_zero_copy_view() {
        let (graph, model) = tiny();
        let bytes = to_bytes(&graph, &model);
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap.graph().n_objects(), 3);
        assert_eq!(snap.model().gamma, model.gamma);
        assert_eq!(snap.model().theta, model.theta);
        assert_eq!(snap.model().theta_smoothing, 0.05);
        // Zero-copy view equals the decoded matrix exactly.
        let view = snap.theta_view();
        assert_eq!(view, model.theta.as_slice());
        assert_eq!(snap.theta_row(2), model.theta.row(2));
        // Re-serialization is byte-identical.
        let again = to_bytes(snap.graph(), snap.model());
        assert_eq!(again, bytes);
    }

    #[test]
    fn save_and_load_files() {
        let (graph, model) = tiny();
        let dir = std::env::temp_dir().join("genclus-serve-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gcsnap");
        save(&path, &graph, &model).unwrap();
        let snap = Snapshot::load(&path).unwrap();
        assert_eq!(snap.model().theta, model.theta);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_path_syncs_before_and_after_the_rename() {
        // The injectable stage seam records the durability checkpoints in
        // order: the temp file must be fully synced *before* the rename
        // and the directory entry *after* it — a crash at any point leaves
        // either the old snapshot or the complete new one, never a
        // renamed-but-empty file.
        let dir = std::env::temp_dir().join("genclus-serve-durable-save-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.gcsnap");
        std::fs::write(&path, b"previous contents").unwrap();

        let mut stages = Vec::new();
        atomic_write_durable(&path, b"new contents", &mut |s| {
            stages.push(s);
            Ok(())
        })
        .unwrap();
        assert_eq!(stages, ["tmp-synced", "renamed", "dir-synced"]);
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        // No temp file is left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp-")
            })
            .collect();
        assert!(strays.is_empty(), "stray temp files: {strays:?}");

        // A crash between the temp-file sync and the rename (the stage
        // callback erroring there simulates it) leaves the target file
        // untouched.
        let err = atomic_write_durable(&path, b"never lands", &mut |s| {
            if s == "tmp-synced" {
                Err(std::io::Error::other("simulated crash"))
            } else {
                Ok(())
            }
        });
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tagged_save_is_durable_and_separates_same_process_writers() {
        // Regression for the `--metrics-dump` durability hole: the dump
        // used to go through raw `fs::write` + `rename` with no fsync. It
        // now routes through this helper, so it must follow the same
        // sync'd-before-rename discipline as snapshots, and two tags must
        // use distinct temp paths (the periodic dumper and the final dump
        // at exit share one pid and can overlap).
        let dir = std::env::temp_dir().join("genclus-serve-tagged-save-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("metrics.json");

        let mut stages = Vec::new();
        let mut tmp_seen = String::new();
        atomic_write_durable_tagged(&path, b"{\"a\":1}\n", ".tmp-final", &mut |s| {
            stages.push(s);
            if s == "tmp-synced" {
                // The temp file (still on disk at this stage) carries the tag.
                for e in std::fs::read_dir(&dir)? {
                    let name = e?.file_name().to_string_lossy().into_owned();
                    if name.contains("-final-") {
                        tmp_seen = name;
                    }
                }
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(stages, ["tmp-synced", "renamed", "dir-synced"]);
        assert!(
            tmp_seen.contains(".tmp-final-"),
            "temp name should embed the tag, saw {tmp_seen:?}"
        );
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":1}\n");

        // The public entry point lands content the same way.
        save_bytes_tagged(&path, b"{\"a\":2}\n", ".tmp").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":2}\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_errors_are_distinguished() {
        let (graph, model) = tiny();
        let bytes = to_bytes(&graph, &model);

        // Not a snapshot.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::BadMagic)
        ));

        // Future schema version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::UnsupportedVersion { found: 99, .. })
        ));

        // Truncation.
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..bytes.len() - 1]),
            Err(ServeError::Truncated)
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bytes[..10]),
            Err(ServeError::Truncated)
        ));

        // Payload corruption is caught by the checksum.
        let mut bad = bytes.clone();
        let mid = HEADER_LEN + (bad.len() - HEADER_LEN) / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn tampered_theta_offset_cannot_overflow_past_validation() {
        // The Θ geometry fields live in the header, *outside* the payload
        // checksum — a wrapping add here would let an absurd offset pass
        // the bound and panic later in theta_view().
        let (graph, model) = tiny();
        let bytes = to_bytes(&graph, &model);
        let mut bad = bytes.clone();
        // theta_offset := usize::MAX - 7 (8-aligned, ≥ HEADER_LEN).
        bad[32..40].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::Malformed(_))
        ));
        // Huge payload_len must not wrap the expected-length check either.
        let mut bad = bytes.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::Truncated)
        ));
        // Θ geometry whose product overflows (checked multiply, not wrap):
        // rows × cols × 8 ≫ usize::MAX while each factor alone fits.
        let mut bad = bytes.clone();
        bad[40..48].copy_from_slice(&(u64::MAX / 16).to_le_bytes());
        bad[48..56].copy_from_slice(&(u64::MAX / 16).to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(ServeError::Malformed(_))
        ));
    }

    #[test]
    fn aligned_bytes_is_eight_aligned() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 1000] {
            let a = AlignedBytes::zeroed(len);
            assert_eq!(a.len(), len);
            assert_eq!(a.as_slice().as_ptr() as usize % 8, 0);
        }
        let a = AlignedBytes::copy_from(&[1, 2, 3]);
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        assert!(!a.is_empty());
    }
}
