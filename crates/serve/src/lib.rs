//! **genclus-serve** — the serving layer over fitted GenClus models.
//!
//! The fit produces exactly what downstream queries need — memberships
//! `Θ`, link-type strengths `γ`, attribute components `β` (§2.2 of the
//! paper) — but a model that only exists inside one `fit` call cannot
//! serve traffic. This crate adds the three layers between a fit and a
//! query stream:
//!
//! * [`snapshot`] — a versioned, dependency-free binary format
//!   (magic + schema version + checksum) that round-trips a
//!   [`GenClusModel`](genclus_core::GenClusModel) together with its
//!   [`HinGraph`](genclus_hin::HinGraph) byte-identically, with an
//!   mmap-style zero-copy view of the `Θ` matrix straight out of the file
//!   buffer;
//! * [`foldin`] — online assignment of **new** objects, with arbitrary
//!   subsets of attributes missing, by iterating the frozen-(`β`, `γ`)
//!   EM row update against their neighbors' fixed memberships — the same
//!   cached-log kernel the fit uses, so folding a training object back in
//!   reproduces its fitted row; pair it with
//!   [`GraphDelta`](genclus_hin::delta::GraphDelta) to commit folded
//!   objects into the network incrementally;
//! * [`engine`] — a JSON-lines query engine ([`engine::QueryEngine`])
//!   that batches concurrent fold-in, membership, and §5.2.2 top-k
//!   link-prediction queries across the persistent worker pool; the
//!   `genclus_serve` binary is its stdin/stdout loop;
//! * [`refresh`] — the warm-start refresh loop
//!   ([`refresh::RefreshableEngine`]): fold-in requests carrying a
//!   `"commit"` field are staged into a
//!   [`GraphDelta`](genclus_hin::delta::GraphDelta). Commit link names
//!   resolve against the **snapshot ∪ staged** namespace (an arrival may
//!   link to an earlier arrival of the same refresh window), and an
//!   optional `"in_links"` field carries links *into* the arrival from
//!   pre-existing or staged sources — appended as old-source overflow
//!   links of the segmented adjacency. After `max_pending_objects`
//!   objects / `max_pending_links` links (or on an explicit
//!   `{"op":"refresh"}`) the engine appends the delta, re-fits with EM
//!   **warm-started** from the served `(Θ, β, γ)`
//!   ([`genclus_core::algorithm::GenClus::fit_warm`] — no `InitStrategy`,
//!   no best-of-seeds warmup), compacts the grown graph back to a
//!   canonical CSR, atomically swaps the refreshed snapshot in, and
//!   optionally persists it (same schema v1, new checksum). Policy knobs
//!   live on [`refresh::RefreshPolicy`];
//! * [`background`] — the double-buffered refresh
//!   ([`background::RefitWorker`], enabled by
//!   [`refresh::RefreshPolicy::background`]): the warm re-fit runs on a
//!   dedicated worker thread while reads keep answering from the old
//!   engine; the serving thread swaps the finished snapshot in between
//!   requests, commits arriving mid-re-fit stage into the *next* delta
//!   window, and a failed re-fit restores the staged window intact. The
//!   `refresh_status` op (optionally `"wait":true`) reports in-flight
//!   state and the last outcome;
//! * [`wal`] — the commit write-ahead log
//!   ([`refresh::RefreshableEngine::with_wal`], `--wal` on the binary):
//!   every accepted commit is appended + fsynced **before** the ack, a
//!   persisted refresh truncates the log atomically down to the
//!   still-staged window, and startup replays log-after-snapshot to
//!   rebuild the staged delta and fold-in `Θ` rows bit-identically — no
//!   acknowledged commit is ever lost. Torn tails are truncated and
//!   reported, never fatal;
//! * [`metrics`] — the always-on observability registry
//!   ([`metrics::ServeMetrics`]): per-op latency histograms, WAL
//!   append/fsync timings and replay counters, refresh lifecycle spans,
//!   and live EM convergence (the registry is a
//!   [`TraceSink`](genclus_obs::TraceSink) for warm re-fits), served as
//!   `{"op":"metrics"}` in a byte-stable JSON schema or Prometheus text;
//! * [`net`] — the multi-client TCP front-end ([`net::NetServer`],
//!   `--listen` on the binary): thread-per-connection JSON-lines serving
//!   where reads share the snapshot lock-free (an atomically swappable
//!   `Arc` of the read core, pinned per request per connection) and all
//!   mutations serialize through one lane, so the WAL's
//!   *ack ⇒ replayable* contract holds under concurrency. Request lines
//!   on every path — stdio and TCP — are read through the byte-capped
//!   [`lines::CappedLineReader`], so untrusted input cannot buffer
//!   unbounded memory.
//!
//! # Quickstart
//!
//! ```
//! use genclus_core::prelude::*;
//! use genclus_hin::prelude::*;
//! use genclus_serve::prelude::*;
//!
//! // Fit a tiny two-cluster sensor network (see genclus-core's docs).
//! let mut schema = Schema::new();
//! let sensor = schema.add_object_type("sensor");
//! let nn = schema.add_relation("nn", sensor, sensor);
//! let reading = schema.add_numerical_attribute("reading");
//! let mut b = HinBuilder::new(schema);
//! let vs: Vec<_> = (0..6).map(|i| b.add_object(sensor, format!("s{i}"))).collect();
//! for group in [[0usize, 1, 2], [3, 4, 5]] {
//!     for &i in &group {
//!         for &j in &group {
//!             if i != j { b.add_link(vs[i], vs[j], nn, 1.0).unwrap(); }
//!         }
//!     }
//! }
//! b.add_numeric(vs[0], reading, -5.0).unwrap();
//! b.add_numeric(vs[3], reading, 5.0).unwrap();
//! let network = b.build().unwrap();
//! let fit = GenClus::new(GenClusConfig::new(2, vec![reading]).with_seed(7))
//!     .unwrap()
//!     .fit(&network)
//!     .unwrap();
//!
//! // Persist, reload, and fold in a never-seen sensor with no readings.
//! let bytes = genclus_serve::snapshot::to_bytes(&network, &fit.model);
//! let snap = Snapshot::from_bytes(&bytes).unwrap();
//! let foldin = FoldInEngine::new(snap.model(), snap.graph());
//! let req = FoldInRequest {
//!     links: vec![(nn, vs[3], 1.0), (nn, vs[4], 1.0)],
//!     ..Default::default()
//! };
//! let assigned = foldin.assign(&req).unwrap();
//! assert_eq!(
//!     genclus_stats::simplex::argmax(&assigned.theta),
//!     snap.model().hard_labels()[3],
//! );
//! ```

pub mod background;
pub mod engine;
pub mod error;
pub mod foldin;
pub mod json;
pub mod lines;
pub mod metrics;
pub mod net;
pub mod refresh;
pub mod snapshot;
pub mod wal;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::background::RefitWorker;
    pub use crate::engine::{QueryCore, QueryEngine};
    pub use crate::error::ServeError;
    pub use crate::foldin::{FoldInEngine, FoldInOptions, FoldInRequest, FoldInResult};
    pub use crate::json::Json;
    pub use crate::lines::{CappedLineReader, LineEvent};
    pub use crate::metrics::{RefreshSpan, ServeMetrics};
    pub use crate::net::{NetConfig, NetServer};
    pub use crate::refresh::{RefreshOutcome, RefreshPolicy, RefreshableEngine};
    pub use crate::snapshot::{Snapshot, SCHEMA_VERSION};
    pub use crate::wal::{CommitRecord, Wal, WalRecoveryReport};
}

pub use prelude::*;
