//! The multi-client TCP front-end: JSON-lines over `N` concurrent
//! connections.
//!
//! `genclus_serve --listen <addr>` wraps a [`RefreshableEngine`] in a
//! [`NetServer`]: one accept thread, one handler thread per connection
//! (connection handlers block on socket reads, so the fixed-size compute
//! [`WorkerPool`](genclus_core::pool::WorkerPool) is the wrong shape —
//! a blocked handler would starve compute), and the same wire protocol as
//! the stdio loop, one JSON response line per JSON request line, in
//! request order per connection.
//!
//! # Shared-read / exclusive-write
//!
//! The engine refactor behind this module splits the serving state in
//! two:
//!
//! * **Reads are lock-free against a published snapshot.** The
//!   [`QueryEngine`](crate::engine::QueryEngine) holds its read-only
//!   [`QueryCore`] in an `Arc`; [`Published`] is the swap point — an
//!   atomic generation counter plus a slot holding the current
//!   `Arc<QueryCore>`. Each connection keeps a [`PinnedCore`]: per
//!   request it loads the generation (one `Acquire` load — the steady
//!   state), and only when the generation moved does it take the slot
//!   lock once to re-clone the `Arc`. Readers therefore never contend
//!   with each other, and a snapshot swap costs each connection one
//!   mutex hit total, not one per request.
//! * **Mutations serialize through one lane.** `commit`ed fold-ins,
//!   `refresh`/`refresh_status`, and `stats` (read-only, but answered by
//!   the refresh layer so WAL fields stay visible) go through a
//!   `Mutex<RefreshableEngine>` — the same single-writer discipline the
//!   stdio loop had implicitly, now explicit. The WAL append+fsync
//!   happens inside the lane *before* the ack leaves it, so the
//!   *ack ⇒ replayable* contract of the durability layer holds verbatim
//!   under concurrency. After every lane call the (possibly refreshed)
//!   core is re-published **while the lane is still held**, which makes
//!   publishes monotone: the generation order equals the swap order.
//!
//! Consequences clients can rely on:
//!
//! * a connection that commits and then reads sees its own writes once
//!   the refresh lands (the read re-pins a generation at least as new as
//!   the one its ack published);
//! * `stats` checksums observed by any one connection are old\* then
//!   new\*, never interleaved — `stats` is answered by the lane, whose
//!   engine swaps atomically between requests;
//! * a finished background re-fit is published promptly even on an idle
//!   server: connection read timeouts double as housekeeping ticks that
//!   `try_lock` the lane, land the re-fit, and publish.
//!
//! # Admission, batching, limits
//!
//! * Request lines are read through the crate-wide
//!   [`CappedLineReader`] — a line over `--max-request-bytes` gets a
//!   structured `BadRequest` and then the connection closes (a peer that
//!   overflows the cap once is not negotiating in good faith; the stdio
//!   loop answers the error and keeps going).
//! * Pipelined requests already buffered on a connection are coalesced
//!   into one batch (up to the configured batch size) and answered with
//!   a single write+flush — the amortization `BENCH_serve.json` shows
//!   batch sizes are fastest at, without adding latency for lone
//!   requests.
//! * At `max_connections` concurrent connections, new arrivals get one
//!   structured error line and are closed (counted in `net.rejected`).
//! * A write error on one connection (EPIPE and friends) closes *that*
//!   connection — logged, counted in `net.write_errors`, every other
//!   connection keeps serving. Only the stdio stream retains the
//!   quiesce-and-exit semantics, because losing stdout means losing the
//!   only client.

use crate::engine::QueryCore;
use crate::json::Json;
use crate::lines::{CappedLineReader, LineEvent};
use crate::metrics::ServeMetrics;
use crate::refresh::RefreshableEngine;
use genclus_obs::log;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end knobs; all have serving-grade defaults.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Max pipelined requests coalesced into one write per connection.
    pub batch: usize,
    /// Per-request-line byte cap (see
    /// [`crate::lines::DEFAULT_MAX_REQUEST_BYTES`]).
    pub max_request_bytes: usize,
    /// Admission cap on concurrent connections.
    pub max_connections: usize,
    /// Socket read timeout; doubles as the housekeeping/shutdown-check
    /// cadence, so it bounds how stale an idle server's published
    /// snapshot can be.
    pub tick: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            batch: 64,
            max_request_bytes: crate::lines::DEFAULT_MAX_REQUEST_BYTES,
            max_connections: 1024,
            tick: Duration::from_millis(100),
        }
    }
}

/// The atomically swappable read handle: the current `Arc<QueryCore>`
/// plus a generation counter that lets readers detect a swap with one
/// atomic load.
struct Published {
    gen: AtomicU64,
    slot: Mutex<Arc<QueryCore>>,
}

impl Published {
    fn new(core: Arc<QueryCore>) -> Self {
        Self {
            gen: AtomicU64::new(1),
            slot: Mutex::new(core),
        }
    }

    /// Publishes `core` if it differs from the current one. Publishers
    /// bump the generation under the slot lock, so generation order is
    /// publication order.
    fn publish(&self, core: &Arc<QueryCore>) {
        // Poison recovery (here and in the two pin paths below): the slot
        // only ever holds a complete Arc, so a poisoned lock still yields
        // a servable core — a panicked publisher must not take down every
        // connection that later pins.
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if !Arc::ptr_eq(&slot, core) {
            *slot = Arc::clone(core);
            self.gen.fetch_add(1, Ordering::Release);
        }
    }
}

/// A connection's cached view of [`Published`]. The steady-state read
/// path is one `Acquire` load; the slot mutex is touched only on the
/// request right after a swap.
struct PinnedCore {
    core: Arc<QueryCore>,
    seen: u64,
}

impl PinnedCore {
    fn new(published: &Published) -> Self {
        let slot = published.slot.lock().unwrap_or_else(|p| p.into_inner());
        Self {
            core: Arc::clone(&slot),
            seen: published.gen.load(Ordering::Acquire),
        }
    }

    /// Re-pins to the latest published core iff the generation moved.
    fn refresh(&mut self, published: &Published) {
        if published.gen.load(Ordering::Acquire) != self.seen {
            let slot = published.slot.lock().unwrap_or_else(|p| p.into_inner());
            self.core = Arc::clone(&slot);
            // Re-read under the lock: publishers bump while holding it,
            // so this pairs the generation with exactly this core.
            self.seen = published.gen.load(Ordering::Acquire);
        }
    }
}

/// State shared by the accept loop and every connection handler.
struct Shared {
    lane: Mutex<RefreshableEngine>,
    published: Published,
    metrics: Arc<ServeMetrics>,
    cfg: NetConfig,
    shutdown: AtomicBool,
}

impl Shared {
    /// Opportunistic idle-tick work: land a finished background re-fit
    /// and publish the current core, but never block behind the lane —
    /// whoever holds it will publish on release.
    fn housekeep(&self) {
        if let Ok(mut lane) = self.lane.try_lock() {
            lane.poll_refresh();
            self.published.publish(&lane.engine().core_shared());
        }
    }

    /// Routes one request line: mutations through the lane (publishing
    /// the possibly-swapped core before the lane is released), reads
    /// against the connection's pinned core.
    fn handle_request(&self, pinned: &mut PinnedCore, line: &str) -> String {
        if RefreshableEngine::parse_mutation(line).is_some() {
            match self.lane.lock() {
                Ok(mut lane) => {
                    let response = lane.handle_line(line);
                    self.published.publish(&lane.engine().core_shared());
                    response
                }
                Err(_) => error_response(
                    &self.metrics,
                    "mutation lane poisoned by an earlier panic; restart the server",
                ),
            }
        } else {
            pinned.refresh(&self.published);
            pinned.core.handle_line(line)
        }
    }
}

/// A running TCP front-end. Dropping it *detaches* the server; call
/// [`Self::shutdown`] to stop accepting, drain connections, and recover
/// the engine (for the binary's quiesce path).
pub struct NetServer {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `engine` — returns once the listener is live.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        engine: RefreshableEngine,
        cfg: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = engine.engine().metrics().clone();
        let published = Published::new(engine.engine().core_shared());
        let shared = Arc::new(Shared {
            lane: Mutex::new(engine),
            published,
            metrics,
            cfg,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("genclus-accept".into())
            .spawn(move || accept_loop(&accept_shared, listener))?;
        log::info(format!("listening on {local_addr}"));
        Ok(Self {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address — the actual port when bound with port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, waits for in-flight connections to drain (active
    /// streamers finish their current batches; idle connections notice
    /// within one tick), and returns the engine so the caller can
    /// quiesce it (drain the in-flight re-fit, final metrics dump).
    pub fn shutdown(mut self) -> RefreshableEngine {
        self.shared.shutdown.store(true, Ordering::Release);
        // The accept loop blocks in `accept`; a throwaway connection
        // wakes it to observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            match accept.join() {
                Ok(conns) => {
                    for conn in conns {
                        let _ = conn.join();
                    }
                }
                Err(_) => log::warn("accept thread panicked"),
            }
        }
        let shared = Arc::try_unwrap(self.shared)
            // lint: allow(no-panic-in-serve) -- shutdown-only invariant: every server thread was just joined, so a surviving Arc handle is a programming error and there is no engine to hand back
            .unwrap_or_else(|_| panic!("all server threads joined, no handles remain"));
        shared
            .lane
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Accepts until shutdown; returns the connection handles for draining.
fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) -> Vec<JoinHandle<()>> {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                log::warn(format!("accept failed: {e}"));
                continue;
            }
        };
        conns.retain(|c| !c.is_finished());
        if conns.len() >= shared.cfg.max_connections {
            shared.metrics.record_conn_rejected();
            reject(stream, shared.cfg.max_connections);
            continue;
        }
        shared.metrics.record_conn_accepted();
        let conn_shared = Arc::clone(shared);
        match std::thread::Builder::new()
            .name("genclus-conn".into())
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                conn_shared.metrics.record_conn_closed();
            }) {
            Ok(handle) => conns.push(handle),
            Err(e) => {
                log::warn(format!("spawning connection handler failed: {e}"));
                shared.metrics.record_conn_closed();
            }
        }
    }
    conns
}

/// One error line, best effort, then drop — what an over-capacity
/// arrival sees.
fn reject(mut stream: TcpStream, cap: usize) {
    let line = Json::obj(vec![
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::str(format!("server at connection capacity ({cap})")),
        ),
    ])
    .render();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

/// The per-connection loop: read (bounded), batch, answer, contain.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.tick)).is_err() {
        return;
    }
    let reader_half = match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            log::warn(format!("{peer}: cloning stream failed: {e}"));
            return;
        }
    };
    let mut reader = CappedLineReader::new(reader_half, shared.cfg.max_request_bytes);
    let mut writer = stream;
    let mut pinned = PinnedCore::new(&shared.published);
    let mut out = String::new();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let first = match reader.next_event() {
            LineEvent::Idle => {
                shared.housekeep();
                continue;
            }
            LineEvent::Eof => return,
            LineEvent::Err(e) => {
                log::warn(format!("{peer}: read failed: {e}"));
                return;
            }
            event => event,
        };
        // Coalesce whatever complete lines the peer already pipelined
        // into one batch → one write+flush.
        let mut events = vec![first];
        while events.len() < shared.cfg.batch {
            match reader.next_buffered() {
                Some(event) => events.push(event),
                None => break,
            }
        }
        out.clear();
        let mut close_after_write = false;
        for event in events {
            match event {
                LineEvent::Line(line) => {
                    out.push_str(&shared.handle_request(&mut pinned, &line));
                }
                LineEvent::OverLimit { discarded } => {
                    shared.metrics.record_over_limit();
                    out.push_str(&over_limit_response(
                        &shared.metrics,
                        discarded,
                        shared.cfg.max_request_bytes,
                    ));
                    close_after_write = true;
                }
                LineEvent::NotUtf8 => out.push_str(&invalid_utf8_response(&shared.metrics)),
                // Idle/Eof/Err never reach the batch (handled above and
                // never produced by `next_buffered`).
                LineEvent::Idle | LineEvent::Eof | LineEvent::Err(_) => {}
            }
            out.push('\n');
            if close_after_write {
                break;
            }
        }
        if let Err(e) = writer
            .write_all(out.as_bytes())
            .and_then(|()| writer.flush())
        {
            // THE containment point: one client's broken pipe is that
            // client's problem. Log, count, close this connection; the
            // process and every other connection keep serving.
            log::warn(format!("{peer}: write failed, closing: {e}"));
            shared.metrics.record_net_write_error();
            return;
        }
        if close_after_write {
            log::warn(format!("{peer}: over-limit request, closing"));
            return;
        }
    }
}

/// A structured error line recorded as a failed `other` request — used
/// for faults that never reach the engine's own dispatcher.
fn error_response(metrics: &ServeMetrics, message: &str) -> String {
    let started = metrics.timer();
    let rendered = Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
    ])
    .render();
    metrics.record_op("other", started, false);
    rendered
}

/// The structured `BadRequest` for a request line over the byte cap —
/// shared by the stdio loop (answer and continue) and the TCP path
/// (answer and close). Counts into `net.over_limit` at the call sites
/// that own the event, and into the request totals here.
pub fn over_limit_response(metrics: &ServeMetrics, discarded: usize, max: usize) -> String {
    error_response(
        metrics,
        &format!(
            "bad request: request line of {discarded} bytes exceeds the \
             {max}-byte limit (--max-request-bytes)"
        ),
    )
}

/// The structured error for a request line that is not valid UTF-8.
pub fn invalid_utf8_response(metrics: &ServeMetrics) -> String {
    error_response(metrics, "bad request: request line is not valid UTF-8")
}
