//! Minimal JSON for the request loop (the workspace is offline — no serde).
//!
//! Covers the subset a line-oriented query protocol needs: objects,
//! arrays, strings with standard escapes (including `\uXXXX` and surrogate
//! pairs), `f64` numbers, booleans, null. Parsing is recursive descent with
//! a depth cap (untrusted input must not overflow the stack); duplicate
//! object keys are a **parse error** — RFC 8259 leaves their semantics
//! undefined, and in a serving protocol that ambiguity is exploitable:
//! with first-occurrence-wins, `{"commit":…,"commit":…}` could be
//! validated against one value while a byte-level fast path (like the
//! mutation sniffer in `refresh.rs`) detects the other. The writer emits
//! compact JSON with round-trippable `f64` formatting.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 64;

impl Json {
    /// Parses one JSON document, rejecting trailing garbage.
    pub fn parse(s: &str) -> Result<Json, String> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (keys are unique — the parser rejects
    /// duplicates).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= u32::MAX as f64 {
            Some(x as usize)
        } else {
            None
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as the object's field list.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_num(out, *x),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a JSON string literal with escaping.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes a number: shortest `f64` representation; non-finite becomes
/// `null` (JSON has no Inf/NaN).
fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        out.push_str(&format!("{}", x as i64));
    } else {
        out.push_str(&format!("{x}"));
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.value(depth + 1)?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key {key:?}"));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(s).map_err(|_| "bad \\u escape")?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(code).ok_or("invalid codepoint")?);
                        }
                        _ => return Err(format!("invalid escape \\{}", esc as char)),
                    }
                }
                Some(b) if b < 0x20 => return Err("control character in string".into()),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary). The
                    // re-validation can only fail if that invariant breaks,
                    // and even then it degrades to a parse error, not a
                    // panic on the serve path.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xc0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {s:?}"))
    }
}

/// Convenience constructors for response building.
impl Json {
    /// An object from key/value pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array of numbers.
    pub fn nums(xs: &[f64]) -> Json {
        Json::Arr(xs.iter().map(|&x| Json::Num(x)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shapes() {
        let v = Json::parse(
            r#"{"id": 3, "op": "fold_in", "links": [["nn", "s0", 1.5]], "values": {"reading": [1.0, -2.5e-1]}}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("op").unwrap().as_str(), Some("fold_in"));
        let links = v.get("links").unwrap().as_arr().unwrap();
        assert_eq!(links[0].as_arr().unwrap()[2].as_f64(), Some(1.5));
        let values = v.get("values").unwrap().as_obj().unwrap();
        assert_eq!(values[0].0, "reading");
        assert_eq!(values[0].1.as_arr().unwrap()[1].as_f64(), Some(-0.25));
    }

    #[test]
    fn as_bool_accepts_only_booleans() {
        let v = Json::parse(r#"{"wait": true, "n": 1, "s": "true"}"#).unwrap();
        assert_eq!(v.get("wait").unwrap().as_bool(), Some(true));
        assert_eq!(Json::Bool(false).as_bool(), Some(false));
        assert_eq!(v.get("n").unwrap().as_bool(), None);
        assert_eq!(v.get("s").unwrap().as_bool(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
        let rendered = Json::str("x\"y\n\u{1}").render();
        assert_eq!(
            Json::parse(&rendered).unwrap().as_str(),
            Some("x\"y\n\u{1}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1.2.3",
            "{\"a\":1} trailing",
            "\"\\ud800\"", // lone surrogate
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should be rejected");
        }
        // Depth bomb stays an error, not a stack overflow.
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&bomb).is_err());
    }

    #[test]
    fn renderer_is_compact_and_parseable() {
        let v = Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("theta", Json::nums(&[0.25, 0.75])),
            ("name", Json::str("s0")),
            ("n", Json::Num(3.0)),
            ("x", Json::Num(0.1)),
            ("inf", Json::Num(f64::INFINITY)),
        ]);
        let s = v.render();
        assert_eq!(
            s,
            r#"{"ok":true,"theta":[0.25,0.75],"name":"s0","n":3,"x":0.1,"inf":null}"#
        );
        assert!(Json::parse(&s).is_ok());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, 123456789.123] {
            let s = Json::Num(x).render();
            assert_eq!(Json::parse(&s).unwrap().as_f64(), Some(x), "{s}");
        }
    }

    #[test]
    fn duplicate_keys_are_a_parse_error() {
        // Regression for the commit-sniffing ambiguity: `get` used to keep
        // the first occurrence while byte-level fast paths (refresh.rs's
        // mutation check) scan the raw line, so `{"commit":…,"commit":…}`
        // could be validated against one value and detected via another.
        for bad in [
            r#"{"a": 1, "a": 2}"#,
            r#"{"op":"fold_in","commit":"x","commit":"y"}"#,
            r#"{"a": {"b": 1, "b": 2}}"#,
            r#"{"\u0061": 1, "a": 2}"#, // escaped spelling of the same key
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.contains("duplicate object key"), "{bad} → {err}");
        }
        // Same key at different nesting levels is fine.
        assert!(Json::parse(r#"{"a": {"a": 1}, "b": 2}"#).is_ok());
    }

    #[test]
    fn as_usize_edge_cases() {
        // Documented behavior with no direct regression tests until now:
        // negative zero is a valid 0, fractional and out-of-u32-range
        // values are rejected, and the boundary itself is accepted.
        assert_eq!(Json::parse("-0").unwrap().as_usize(), Some(0));
        assert_eq!(Json::parse("-0.0").unwrap().as_usize(), Some(0));
        assert_eq!(Json::Num(-0.0).as_usize(), Some(0));
        assert_eq!(Json::Num(0.5).as_usize(), None);
        assert_eq!(Json::Num(3.0000001).as_usize(), None);
        assert_eq!(Json::Num(-1.0).as_usize(), None);
        assert_eq!(
            Json::Num(u32::MAX as f64).as_usize(),
            Some(u32::MAX as usize)
        );
        assert_eq!(Json::Num(u32::MAX as f64 + 1.0).as_usize(), None);
        assert_eq!(Json::Num(1e300).as_usize(), None);
        assert_eq!(Json::Num(f64::NAN).as_usize(), None);
        assert_eq!(Json::Num(f64::INFINITY).as_usize(), None);
        assert_eq!(Json::Str("3".into()).as_usize(), None);
    }

    #[test]
    fn depth_cap_is_an_error_not_an_overflow() {
        // Comfortably inside the cap parses; past it errors cleanly.
        let deep_ok = "[".repeat(60) + "0" + &"]".repeat(60);
        assert!(Json::parse(&deep_ok).is_ok());
        for n in [70usize, 200, 5000] {
            let bomb = "[".repeat(n) + "0" + &"]".repeat(n);
            let err = Json::parse(&bomb).unwrap_err();
            assert!(err.contains("nesting too deep"), "depth {n}: {err}");
            // Objects nest through the same budget.
            let obj_bomb = "{\"k\":".repeat(n) + "0" + &"}".repeat(n);
            assert!(Json::parse(&obj_bomb).is_err(), "object depth {n}");
        }
    }

    mod fuzz {
        //! Randomized robustness and round-trip properties, via the
        //! vendored proptest: the parser is fed untrusted serving input,
        //! so arbitrary garbage must come back as `Err`, never a panic,
        //! and valid documents must survive parse → render → parse
        //! exactly (with render ∘ parse idempotent — the normalizer).

        use super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A random scalar-or-container value, depth-bounded, with only
        /// finite numbers (JSON cannot carry non-finite ones).
        fn arbitrary_json(rng: &mut StdRng, depth: usize) -> Json {
            let top = if depth == 0 { 4 } else { 6 };
            match rng.gen_range(0..top) {
                0 => Json::Null,
                1 => Json::Bool(rng.gen()),
                2 => {
                    if rng.gen_bool(0.5) {
                        Json::Num(rng.gen_range(-1.0e12f64..1.0e12).trunc())
                    } else {
                        Json::Num(rng.gen_range(-1.0e3f64..1.0e3))
                    }
                }
                3 => Json::Str(arbitrary_string(rng)),
                4 => Json::Arr(
                    (0..rng.gen_range(0..4))
                        .map(|_| arbitrary_json(rng, depth - 1))
                        .collect(),
                ),
                _ => {
                    let n = rng.gen_range(0..4);
                    let mut fields: Vec<(String, Json)> = Vec::with_capacity(n);
                    for i in 0..n {
                        // Unique keys: parsing drops duplicates, which is
                        // exercised separately.
                        let key = format!("{}{}", arbitrary_string(rng), i);
                        let value = arbitrary_json(rng, depth - 1);
                        fields.push((key, value));
                    }
                    Json::Obj(fields)
                }
            }
        }

        /// Strings mixing plain ASCII, escapes, control characters, and
        /// multi-byte scalars (including astral-plane, which the writer
        /// emits raw and the parser reads as surrogate-free UTF-8).
        fn arbitrary_string(rng: &mut StdRng) -> String {
            (0..rng.gen_range(0..8))
                .map(|_| match rng.gen_range(0..6) {
                    0 => rng.gen_range(b'a'..=b'z') as char,
                    1 => ['"', '\\', '/', '\n', '\r', '\t'][rng.gen_range(0usize..6)],
                    2 => char::from_u32(rng.gen_range(1..0x20)).unwrap(),
                    3 => ['é', 'Ж', '中', '😀', '𝕏'][rng.gen_range(0usize..5)],
                    _ => rng.gen_range(b' '..=b'~') as char,
                })
                .collect()
        }

        /// Bytes biased toward JSON's structural vocabulary, so random
        /// streams reach deep into the parser instead of failing on the
        /// first byte.
        const ALPHABET: &[u8] = br#"{}[]",:0123456789.eE+-\utrfanl "#;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Arbitrary byte soup: parse may fail, must not panic.
            #[test]
            fn arbitrary_bytes_never_panic(
                bytes in proptest::collection::vec(any::<u8>(), 0..256),
            ) {
                let text = String::from_utf8_lossy(&bytes);
                let _ = Json::parse(&text);
            }

            /// Structural soup: same property, far deeper coverage of the
            /// object/array/string/number state machine.
            #[test]
            fn structural_soup_never_panics(
                picks in proptest::collection::vec(0usize..31, 0..256),
            ) {
                let text: String = picks
                    .iter()
                    .map(|&i| ALPHABET[i] as char)
                    .collect();
                let _ = Json::parse(&text);
            }

            /// Valid documents round-trip exactly, and the renderer is a
            /// normalizer: render ∘ parse is idempotent even on messy
            /// (whitespace-padded) input — while a duplicated key anywhere
            /// turns the document into a parse error.
            #[test]
            fn valid_docs_round_trip(seed in any::<u64>()) {
                let mut rng = genclus_stats::seeded_rng(seed);
                let doc = arbitrary_json(&mut rng, 4);
                let rendered = doc.render();
                let parsed = Json::parse(&rendered).unwrap();
                prop_assert_eq!(&parsed, &doc, "parse(render(x)) != x for {}", rendered);
                prop_assert_eq!(parsed.render(), rendered.clone(), "render unstable");

                // A messy equivalent document: whitespace padding around
                // every token; and a duplicated first key must be rejected.
                let messy = match &doc {
                    Json::Obj(fields) if !fields.is_empty() => {
                        let mut m = String::from(" {\n");
                        for (i, (k, v)) in fields.iter().enumerate() {
                            let mut kv = String::new();
                            write_str(&mut kv, k);
                            kv.push_str(" :\t");
                            v.render_into(&mut kv);
                            m.push_str(&kv);
                            m.push_str(if i + 1 < fields.len() { " ,\n" } else { "\n" });
                        }
                        m.push_str("} \r\n");

                        // The same document with the first key repeated is
                        // a duplicate-key error, not a silent drop.
                        let mut dup = m.trim_end().trim_end_matches('}').to_string();
                        dup.push(',');
                        write_str(&mut dup, &fields[0].0);
                        dup.push_str(": null }");
                        let err = Json::parse(&dup).unwrap_err();
                        prop_assert!(
                            err.contains("duplicate object key"),
                            "{} → {}", dup, err
                        );
                        m
                    }
                    _ => format!("  {rendered}\t\n"),
                };
                let normalized = Json::parse(&messy).unwrap().render();
                prop_assert_eq!(&normalized, &rendered, "normalizer disagreed on {}", messy);
                let again = Json::parse(&normalized).unwrap().render();
                prop_assert_eq!(again, normalized, "normalizer not idempotent");
            }
        }
    }
}
