//! Property tests for the serving layer:
//!
//! * snapshot save → load → save is **byte-identical** on randomized
//!   networks and models;
//! * corrupting any single payload byte is detected at load;
//! * folding an object that was *in* the training set back in (its own
//!   links + observations, frozen `β`/`γ`) reproduces its fitted `Θ` row
//!   to ≤ 1e-9;
//! * `append` + fold-in compose: a delta-committed object folds to the
//!   same row as the transient request that described it.

use genclus_core::attr_model::ClusterComponents;
use genclus_core::em::EmEngine;
use genclus_core::GenClusModel;
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use genclus_stats::MembershipMatrix;
use proptest::prelude::*;
use rand::Rng;

/// A randomized two-type network with three relations, both attribute
/// kinds, and ~40% missing observations.
fn random_network(seed: u64, n_per_type: usize) -> (HinGraph, Vec<AttributeId>) {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let ta = s.add_object_type("A");
    let tb = s.add_object_type("B");
    let ab = s.add_relation("ab", ta, tb);
    let ba = s.add_relation("ba", tb, ta);
    let aa = s.add_relation("aa", ta, ta);
    let text = s.add_categorical_attribute("text", 7);
    let num = s.add_numerical_attribute("num");
    let mut b = HinBuilder::new(s);
    let a_ids: Vec<_> = (0..n_per_type)
        .map(|i| b.add_object(ta, format!("a{i}")))
        .collect();
    let b_ids: Vec<_> = (0..n_per_type)
        .map(|i| b.add_object(tb, format!("b{i}")))
        .collect();
    for i in 0..n_per_type {
        b.add_link(a_ids[i], b_ids[i], ab, 1.0).unwrap();
        b.add_link(b_ids[i], a_ids[(i + 1) % n_per_type], ba, 1.0)
            .unwrap();
        for _ in 0..2 {
            let j = rng.gen_range(0..n_per_type);
            b.add_link(a_ids[i], b_ids[j], ab, rng.gen_range(0.5..2.0))
                .unwrap();
            let j = rng.gen_range(0..n_per_type);
            if j != i {
                b.add_link(a_ids[i], a_ids[j], aa, rng.gen_range(0.5..3.0))
                    .unwrap();
            }
        }
        if rng.gen_bool(0.6) {
            for _ in 0..rng.gen_range(1..4) {
                b.add_term_count(a_ids[i], text, rng.gen_range(0..7), rng.gen_range(1.0..3.0))
                    .unwrap();
            }
        }
        if rng.gen_bool(0.6) {
            for _ in 0..rng.gen_range(1..4) {
                b.add_numeric(b_ids[i], num, rng.gen_range(-4.0..4.0))
                    .unwrap();
            }
        }
    }
    (b.build().unwrap(), vec![text, num])
}

/// Runs the frozen-γ EM to a deep fixed point and wraps it as a model;
/// the second return is whether EM actually converged (a few randomized
/// instances settle into limit cycles — fixed-point sweeps carry no
/// global convergence guarantee — and fitted-row reproduction is only
/// meaningful for converged fits).
fn fitted_model(
    graph: &HinGraph,
    attrs: &[AttributeId],
    k: usize,
    seed: u64,
) -> (GenClusModel, bool) {
    let mut rng = genclus_stats::seeded_rng(seed ^ 0x5eed);
    let theta = MembershipMatrix::random(graph.n_objects(), k, &mut rng);
    let comps: Vec<ClusterComponents> = attrs
        .iter()
        .map(|&a| ClusterComponents::init(k, graph.attribute(a), &mut rng, 1e-9, 1e-6))
        .collect();
    let gamma: Vec<f64> = (0..graph.schema().n_relations())
        .map(|i| 0.5 + 0.5 * i as f64)
        .collect();
    let smoothing = 0.05;
    // Deep fixed point: the fold-in comparison tolerance (1e-9) needs the
    // fitted rows essentially *at* the fixed point, because a stopping
    // residual δ amplifies to ≈ δ/(1−ρ) distance for contraction factor ρ,
    // and link-dominated objects can have ρ near 1.
    let max_iters = 8000;
    let mut eng = EmEngine::new(graph, attrs, k, 1, 1e-9, 1e-6).with_smoothing(smoothing);
    let (theta, comps, iters) = eng.run(theta, comps, &gamma, max_iters, 1e-15);
    let model = GenClusModel {
        theta,
        gamma,
        components: comps,
        attributes: attrs.to_vec(),
        theta_smoothing: smoothing,
    };
    (model, iters < max_iters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Snapshot round trips are byte-identical and structure-preserving.
    #[test]
    fn snapshot_save_load_save_is_byte_identical(
        seed in any::<u64>(),
        n in 4usize..24,
        k in 2usize..5,
    ) {
        let (graph, attrs) = random_network(seed, n);
        let (model, _) = fitted_model(&graph, &attrs, k, seed);
        let bytes = genclus_serve::snapshot::to_bytes(&graph, &model);
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let again = genclus_serve::snapshot::to_bytes(snap.graph(), snap.model());
        prop_assert_eq!(&again, &bytes, "save → load → save must be byte-identical");
        // The zero-copy Θ view equals the decoded matrix bit for bit.
        prop_assert_eq!(snap.theta_view(), snap.model().theta.as_slice());
        // And a second load of the re-serialization agrees.
        let snap2 = Snapshot::from_bytes(&again).unwrap();
        prop_assert_eq!(snap2.model().theta.as_slice(), snap.model().theta.as_slice());
        prop_assert_eq!(snap2.graph().n_links(), graph.n_links());
    }

    /// Any single corrupted payload byte is caught by the checksum (or, if
    /// it strikes the header, by header validation).
    #[test]
    fn corruption_is_detected(seed in any::<u64>(), strike in any::<u64>()) {
        let (graph, attrs) = random_network(seed, 6);
        let (model, _) = fitted_model(&graph, &attrs, 2, seed);
        let bytes = genclus_serve::snapshot::to_bytes(&graph, &model);
        let pos = (strike as usize) % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "flipping byte {pos} of {} went unnoticed",
            bytes.len()
        );
    }

    /// Folding a training object back in reproduces its fitted row ≤ 1e-9.
    #[test]
    fn fold_in_reproduces_fitted_rows(seed in any::<u64>(), n in 4usize..16) {
        let (graph, attrs) = random_network(seed, n);
        let (model, converged) = fitted_model(&graph, &attrs, 3, seed);
        prop_assume!(converged, "EM limit cycle — fitted rows are not a fixed point");
        let engine = FoldInEngine::new(&model, &graph).with_options(FoldInOptions {
            max_iters: 4000,
            tol: 1e-15,
        });
        for v in graph.objects() {
            let out = engine.fold_existing(v).unwrap();
            let fitted = model.theta.row(v.index());
            for (kk, (a, b)) in out.theta.iter().zip(fitted).enumerate() {
                prop_assert!(
                    (a - b).abs() <= 1e-9,
                    "seed {seed}, object {v}, cluster {kk}: fold-in {a} vs fitted {b}"
                );
            }
        }
    }

    /// A committed (append) object and the transient fold-in request that
    /// described it agree, and the snapshot of the grown network still
    /// round-trips.
    #[test]
    fn append_and_fold_in_compose(seed in any::<u64>(), n in 4usize..12) {
        let (graph, attrs) = random_network(seed, n);
        let (model, _) = fitted_model(&graph, &attrs, 2, seed);
        let mut rng = genclus_stats::seeded_rng(seed ^ 0xfeed);
        let schema = graph.schema();
        let ta = schema.object_type_by_name("A").unwrap();
        let ab = schema.relation_by_name("ab").unwrap();
        let aa = schema.relation_by_name("aa").unwrap();
        let num = schema.attribute_by_name("num").unwrap();
        let tb = schema.object_type_by_name("B").unwrap();

        // Describe a new object twice: as a transient request and as a
        // committed delta.
        let b_targets: Vec<_> = graph.objects_of_type(tb);
        let a_targets: Vec<_> = graph.objects_of_type(ta);
        let t1 = b_targets[rng.gen_range(0..b_targets.len())];
        let t2 = a_targets[rng.gen_range(0..a_targets.len())];
        let x = rng.gen_range(-3.0..3.0);
        let req = FoldInRequest {
            links: vec![(ab, t1, 1.5), (aa, t2, 0.7)],
            values: vec![(num, vec![x])],
            ..Default::default()
        };
        let transient = FoldInEngine::new(&model, &graph).assign(&req).unwrap();

        let mut grown = graph.clone();
        let mut delta = GraphDelta::new(&grown);
        let fresh = delta.add_object(ta, "fresh");
        delta.add_link(fresh, t1, ab, 1.5).unwrap();
        delta.add_link(fresh, t2, aa, 0.7).unwrap();
        delta.add_numeric(fresh, num, x).unwrap();
        grown.append(delta).unwrap();

        // The model does not cover the new object yet; extend Θ with the
        // folded row and verify `fold_existing` lands on the same row.
        let mut rows: Vec<Vec<f64>> = (0..model.theta.n_objects())
            .map(|i| model.theta.row(i).to_vec())
            .collect();
        rows.push(transient.theta.clone());
        let grown_model = GenClusModel {
            theta: MembershipMatrix::from_rows(&rows, model.n_clusters()),
            gamma: model.gamma.clone(),
            components: model.components.clone(),
            attributes: model.attributes.clone(),
            theta_smoothing: model.theta_smoothing,
        };
        let committed = FoldInEngine::new(&grown_model, &grown)
            .fold_existing(fresh)
            .unwrap();
        for (a, b) in committed.theta.iter().zip(&transient.theta) {
            prop_assert!((a - b).abs() <= 1e-9, "committed {a} vs transient {b}");
        }
        // The grown network snapshots and round-trips byte-identically.
        let bytes = genclus_serve::snapshot::to_bytes(&grown, &grown_model);
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        let again = genclus_serve::snapshot::to_bytes(snap.graph(), snap.model());
        prop_assert_eq!(again, bytes);
    }
}
