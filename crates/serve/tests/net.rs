//! Concurrent-serving properties of the TCP front-end
//! ([`genclus_serve::net`]), in-process: a [`NetServer`] over real
//! sockets, N client threads, commits racing reads.
//!
//! What must hold:
//!
//! * acked commits are durable in order and visible to every connection
//!   once the refresh swap lands;
//! * the `stats` checksums observed by any one connection are monotone —
//!   old\* then new\*, never interleaved, never revisiting a snapshot;
//! * one client disconnecting (mid-line, or without reading its
//!   responses) leaves every other connection serving;
//! * a request line over the byte cap gets a structured `BadRequest`,
//!   closes that connection, and nothing else;
//! * the admission cap turns new arrivals away with a structured error.
//!
//! The swap-during-read test pins the timing deterministically with the
//! `doc(hidden)` background-refit hook: the re-fit blocks on a gate while
//! a reader connection observes the old snapshot, then the gate opens and
//! the reader must see exactly one switch.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The two-ring sensor network from `tests/background.rs`.
fn snapshot(n_per_ring: usize) -> Snapshot {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..2 * n_per_ring)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for ring in 0..2 {
        let base = ring * n_per_ring;
        for i in 0..n_per_ring {
            let j = (i + 1) % n_per_ring;
            b.add_link(vs[base + i], vs[base + j], nn, 1.0).unwrap();
            b.add_link(vs[base + j], vs[base + i], nn, 1.0).unwrap();
        }
        let mu = if ring == 0 { -5.0 } else { 5.0 };
        for i in 0..n_per_ring / 2 {
            b.add_numeric(vs[base + i], reading, mu + 0.1 * i as f64)
                .unwrap();
        }
    }
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    Snapshot::from_bytes(&genclus_serve::snapshot::to_bytes(&graph, &fit.model)).unwrap()
}

/// A blocking JSON-lines client with a generous read timeout (a hang is
/// a test failure, not a deadlock).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Self { stream, reader }
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("response read");
        line.trim_end().to_string()
    }

    fn send(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("request write");
        self.read_line()
    }

    fn ok(&mut self, line: &str) -> Json {
        let resp = self.send(line);
        let v = Json::parse(&resp).expect("json response");
        assert_eq!(
            v.get("ok"),
            Some(&Json::Bool(true)),
            "expected success for {line}, got {resp}"
        );
        v
    }

    fn checksum(&mut self) -> String {
        self.ok(r#"{"op":"stats"}"#)
            .get("checksum")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string()
    }
}

/// Monotone, never-revisiting: once a sequence moves off a value it never
/// returns to it — the wire-visible shape of "old\* then new\*".
fn assert_monotone(observed: &[String], who: usize) {
    let mut seen: Vec<&String> = Vec::new();
    for c in observed {
        match seen.iter().position(|s| *s == c) {
            Some(i) => assert_eq!(
                i + 1,
                seen.len(),
                "client {who} observed interleaved checksums: {observed:?}"
            ),
            None => seen.push(c),
        }
    }
}

#[test]
fn sixty_four_connections_commits_racing_reads() {
    let policy = RefreshPolicy {
        max_pending_objects: 4,
        background: true,
        ..RefreshPolicy::default()
    };
    let engine = RefreshableEngine::new(snapshot(10), 1, policy);
    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // 64 concurrent reader connections, each interleaving stats (lane)
    // with membership/top_k (lock-free pinned path).
    let readers: Vec<_> = (0..64)
        .map(|who| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut observed = Vec::new();
                for i in 0..12 {
                    observed.push(c.checksum());
                    c.ok(&format!(r#"{{"op":"membership","object":"s{}"}}"#, i % 20));
                }
                (who, observed)
            })
        })
        .collect();

    // Meanwhile: commits past the refresh threshold, twice, on their own
    // connection. Every ack read back here is a durability-ordered point
    // racing the 64 readers above.
    let mut writer = Client::connect(addr);
    for i in 0..8 {
        let anchor = if i == 0 {
            "s0".into()
        } else {
            format!("n{}", i - 1)
        };
        writer.ok(&format!(
            r#"{{"op":"fold_in","links":[["nn","{anchor}",1.0],["nn","s1",1.0]],"commit":"n{i}"}}"#
        ));
    }
    let waited = writer.ok(r#"{"op":"refresh_status","wait":true}"#);
    assert_eq!(waited.get("in_flight"), Some(&Json::Bool(false)));

    for handle in readers {
        let (who, observed) = handle.join().expect("reader thread");
        assert_monotone(&observed, who);
    }

    // Post-swap: every acked commit is visible to a brand-new connection,
    // on the lock-free read path.
    let mut fresh = Client::connect(addr);
    let stats = fresh.ok(r#"{"op":"stats"}"#);
    assert_eq!(stats.get("n_objects").unwrap().as_usize(), Some(28));
    for i in 0..8 {
        fresh.ok(&format!(r#"{{"op":"membership","object":"n{i}"}}"#));
    }
    let metrics = fresh.ok(r#"{"op":"metrics"}"#);
    let net = metrics.get("net").unwrap();
    assert!(net.get("accepted").unwrap().as_usize().unwrap() >= 66);
    assert_eq!(net.get("write_errors").unwrap().as_usize(), Some(0));

    drop((writer, fresh));
    let engine = server.shutdown();
    assert_eq!(engine.refreshes(), 2);
}

#[test]
fn swap_during_read_is_atomic_deterministically() {
    let policy = RefreshPolicy {
        background: true,
        ..RefreshPolicy::default()
    };
    let mut engine = RefreshableEngine::new(snapshot(8), 1, policy);

    // Gate the background re-fit: it blocks at its start until released,
    // so "during the re-fit" is a controlled region, not a race.
    #[allow(clippy::type_complexity)]
    let gate: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
    let hook_gate = Arc::clone(&gate);
    engine.set_background_refit_hook(move || {
        let (lock, cvar) = &*hook_gate;
        let mut released = lock.lock().unwrap();
        while !*released {
            released = cvar.wait(released).unwrap();
        }
    });

    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut writer = Client::connect(addr);
    let mut reader = Client::connect(addr);
    let old = reader.checksum();

    writer.ok(r#"{"op":"fold_in","links":[["nn","s0",1.0]],"commit":"g0"}"#);
    let started = writer.ok(r#"{"op":"refresh"}"#);
    assert_eq!(started.get("started"), Some(&Json::Bool(true)));

    // The re-fit is provably in flight and blocked: every read, on every
    // path, answers from the old snapshot.
    let mut observed = Vec::new();
    for _ in 0..5 {
        observed.push(reader.checksum());
        reader.ok(r#"{"op":"membership","object":"s0"}"#);
    }
    assert!(observed.iter().all(|c| *c == old), "{observed:?}");
    // The committed-but-unrefreshed object is not on the read path yet.
    let resp = reader.send(r#"{"op":"membership","object":"g0"}"#);
    assert!(resp.contains(r#""ok":false"#), "{resp}");

    // Open the gate; the swap lands and must be observed as one switch.
    {
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let c = reader.checksum();
        let switched = c != old;
        observed.push(c);
        if switched {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "swap never observed: {observed:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let new = observed.last().unwrap().clone();
    let switch = observed.iter().position(|c| *c != old).unwrap();
    assert!(observed[..switch].iter().all(|c| *c == old));
    assert!(observed[switch..].iter().all(|c| *c == new));

    // The same connection's *next* pinned read sees the new core: the
    // arrival is now served on the lock-free path (the old core has no
    // object named g0, so this is proof the publish reached the pin).
    reader.ok(r#"{"op":"membership","object":"g0"}"#);

    drop((writer, reader));
    server.shutdown();
}

#[test]
fn one_disconnecting_client_leaves_others_serving() {
    let engine = RefreshableEngine::new(snapshot(6), 1, RefreshPolicy::default());
    let server = NetServer::bind("127.0.0.1:0", engine, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut steady = Client::connect(addr);
    steady.ok(r#"{"op":"stats"}"#);

    // Client A dies mid-line (partial request, no newline, then gone).
    {
        let mut a = Client::connect(addr);
        a.stream.write_all(br#"{"op":"stats""#).unwrap();
    }

    // Client B pipelines a pile of requests and vanishes without reading
    // a single response — the server's writes may hit a dead socket.
    {
        let b = TcpStream::connect(addr).unwrap();
        let mut w = b.try_clone().unwrap();
        for _ in 0..256 {
            writeln!(w, r#"{{"op":"stats"}}"#).unwrap();
        }
    }

    // Both disconnects contained: the steady connection keeps serving,
    // and new connections are accepted.
    for _ in 0..10 {
        steady.ok(r#"{"op":"membership","object":"s0"}"#);
    }
    let mut fresh = Client::connect(addr);
    fresh.ok(r#"{"op":"stats"}"#);

    drop((steady, fresh));
    server.shutdown();
}

#[test]
fn over_limit_line_answers_bad_request_then_closes_that_connection() {
    let engine = RefreshableEngine::new(snapshot(6), 1, RefreshPolicy::default());
    let cfg = NetConfig {
        max_request_bytes: 256,
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", engine, cfg).unwrap();
    let addr = server.local_addr();

    let mut offender = Client::connect(addr);
    offender.ok(r#"{"op":"stats"}"#);
    let long = format!(r#"{{"op":"membership","object":"{}"}}"#, "x".repeat(4096));
    let resp = offender.send(&long);
    assert!(resp.contains(r#""ok":false"#), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");
    // ... and then the connection is closed (EOF on the next read).
    let mut tail = String::new();
    let n = offender.reader.read_line(&mut tail).expect("EOF read");
    assert_eq!(n, 0, "connection must close after an over-limit line");

    // The process and other connections are untouched; the event is
    // visible in the metrics.
    let mut fresh = Client::connect(addr);
    fresh.ok(r#"{"op":"stats"}"#);
    let net = fresh.ok(r#"{"op":"metrics"}"#).get("net").cloned().unwrap();
    assert_eq!(net.get("over_limit").unwrap().as_usize(), Some(1));

    drop((offender, fresh));
    server.shutdown();
}

#[test]
fn admission_cap_rejects_new_arrivals_with_a_structured_error() {
    let engine = RefreshableEngine::new(snapshot(6), 1, RefreshPolicy::default());
    let cfg = NetConfig {
        max_connections: 1,
        ..NetConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", engine, cfg).unwrap();
    let addr = server.local_addr();

    let mut only = Client::connect(addr);
    only.ok(r#"{"op":"stats"}"#);

    let mut turned_away = Client::connect(addr);
    let line = turned_away.read_line();
    assert!(line.contains("connection capacity"), "{line}");
    let mut tail = String::new();
    assert_eq!(turned_away.reader.read_line(&mut tail).unwrap(), 0);

    // The admitted connection is unaffected, and the slot frees up once
    // it leaves (the handler exits on EOF within a tick).
    only.ok(r#"{"op":"membership","object":"s0"}"#);
    drop(only);
    let mut admitted = None;
    for _ in 0..100 {
        std::thread::sleep(Duration::from_millis(20));
        let mut c = Client::connect(addr);
        let resp = c.send(r#"{"op":"stats"}"#);
        if resp.contains(r#""ok":true"#) {
            admitted = Some(c);
            break;
        }
    }
    let mut c = admitted.expect("slot never freed after the only client left");
    let net = c.ok(r#"{"op":"metrics"}"#).get("net").cloned().unwrap();
    assert!(net.get("rejected").unwrap().as_usize().unwrap() >= 1);

    drop(c);
    server.shutdown();
}
