//! Scale guard: snapshot load must not allocate per object.
//!
//! The acceptance bar for the interned-name refactor is that loading a
//! million-object snapshot performs **no per-object heap allocation**: the
//! name arena decodes as two bulk array reads, `Θ` is served zero-copy out
//! of the load buffer, and every decoded array is allocated exactly once at
//! its final size. A counting [`GlobalAlloc`] proves it structurally: the
//! *number* of allocations during [`Snapshot::from_bytes`] must be
//! identical for a small and a 64×-larger snapshot — any per-object
//! `String`, per-row `Vec`, or doubling-growth decode loop would break the
//! equality immediately (and by far more than the slack we allow).
//!
//! Kept as its own integration-test binary with a single `#[test]` so no
//! concurrent test thread pollutes the counter.

use genclus_core::attr_model::{CategoricalComponents, ClusterComponents, GaussianComponents};
use genclus_core::GenClusModel;
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use genclus_stats::MembershipMatrix;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct CountingAlloc;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates every operation to `System`; the counter has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is exactly the per-object pattern this test
        // exists to catch — count it like a fresh allocation.
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, usize) {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let r = f();
    COUNTING.store(false, Ordering::SeqCst);
    (r, ALLOCS.load(Ordering::SeqCst))
}

/// A sensor chain of `n` objects with both attribute kinds observed and a
/// fitted 2-cluster model — every array in the snapshot scales with `n`.
fn snapshot_bytes(n: usize) -> Vec<u8> {
    let mut s = Schema::new();
    let t = s.add_object_type("sensor");
    let nn = s.add_relation("nn", t, t);
    let tags = s.add_categorical_attribute("tags", 8);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let ids: Vec<_> = (0..n)
        .map(|i| b.add_object(t, format!("sensor-{i}")))
        .collect();
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], nn, 1.0).unwrap();
    }
    for (i, &v) in ids.iter().enumerate() {
        b.add_terms(v, tags, &[(i % 8) as u32]).unwrap();
        b.add_numeric(v, reading, i as f64 / n as f64).unwrap();
    }
    let graph = b.build().unwrap();
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let p = (i % 10) as f64 / 10.0;
            vec![p, 1.0 - p]
        })
        .collect();
    let model = GenClusModel {
        theta: MembershipMatrix::from_rows(&rows, 2),
        gamma: vec![1.0],
        components: vec![
            ClusterComponents::Categorical(CategoricalComponents::from_rows(
                &[vec![0.5; 8], vec![0.5; 8]],
                1e-9,
            )),
            ClusterComponents::Gaussian(GaussianComponents::from_params(
                vec![0.25, 0.75],
                vec![0.1, 0.1],
                1e-6,
            )),
        ],
        attributes: vec![tags, reading],
        theta_smoothing: 0.05,
    };
    genclus_serve::snapshot::to_bytes(&graph, &model)
}

#[test]
fn snapshot_load_allocation_count_is_object_count_invariant() {
    let small_bytes = snapshot_bytes(64);
    let large_bytes = snapshot_bytes(64 * 64);

    // Warm-up decode outside the counted window (lazy runtime init, &c.).
    drop(Snapshot::from_bytes(&small_bytes).unwrap());

    let (small, small_allocs) = counted(|| Snapshot::from_bytes(&small_bytes).unwrap());
    let (large, large_allocs) = counted(|| Snapshot::from_bytes(&large_bytes).unwrap());
    assert_eq!(
        small_allocs, large_allocs,
        "snapshot load allocated differently for 64 vs 4096 objects — some \
         decode path allocates per object (or grows by doubling)"
    );

    // Θ is served straight out of the retained load buffer: the view's
    // pointer range lies inside `raw_bytes`, no copy in between.
    let buf = large.raw_bytes().as_ptr() as usize;
    let theta = large.theta_view();
    assert_eq!(theta.len(), 64 * 64 * 2);
    let t0 = theta.as_ptr() as usize;
    assert!(
        t0 >= buf && t0 + std::mem::size_of_val(theta) <= buf + large.raw_bytes().len(),
        "theta_view must alias the load buffer"
    );

    // Name lookups resolve through the arena without allocating at all.
    let g = large.graph();
    let ((), lookup_allocs) = counted(|| {
        for v in g.objects() {
            std::hint::black_box(g.object_name(v));
        }
    });
    assert_eq!(lookup_allocs, 0, "object_name must be arena-backed");

    drop(small);
}
