//! Snapshot format-compatibility guard.
//!
//! `tests/fixtures/snapshot_v<N>.gcsnap` is a committed snapshot written by
//! the version-`N` writer, one fixture per historical schema version. Two
//! invariants, both enforced in CI:
//!
//! * **old snapshots keep loading** — if a historical fixture stops
//!   loading, a format change broke compatibility without a version bump
//!   and a migration path;
//! * **the current layout is frozen** — the current writer must reproduce
//!   the current version's fixture byte for byte; any layout change must
//!   bump the version (and add a new fixture) instead of silently
//!   redefining a released version.
//!
//! When bumping `SCHEMA_VERSION`, keep the old fixtures committed and add
//! the new one via:
//! `cargo test -p genclus-serve --test fixture regenerate_fixture -- --ignored`

use genclus_core::attr_model::{CategoricalComponents, ClusterComponents, GaussianComponents};
use genclus_core::GenClusModel;
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use genclus_serve::snapshot::SCHEMA_VERSION;
use genclus_stats::MembershipMatrix;
use std::path::PathBuf;

fn fixture_path(version: u32) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("snapshot_v{version}.gcsnap"))
}

/// A fully deterministic (no RNG, hand-set parameters) network + model.
fn fixture_parts() -> (HinGraph, GenClusModel) {
    let mut s = Schema::new();
    let station = s.add_object_type("station");
    let report = s.add_object_type("report");
    let emits = s.add_relation("emits", station, report);
    let emitted_by = s.add_relation("emitted_by", report, station);
    let tags = s.add_categorical_attribute("tags", 4);
    let temp = s.add_numerical_attribute("temp");
    let mut b = HinBuilder::new(s);
    let s0 = b.add_object(station, "st-0");
    let s1 = b.add_object(station, "st-1");
    let r0 = b.add_object(report, "rp-0");
    let r1 = b.add_object(report, "rp-1");
    let r2 = b.add_object(report, "rp-2");
    b.add_link_pair(s0, r0, emits, emitted_by, 1.0).unwrap();
    b.add_link_pair(s0, r1, emits, emitted_by, 2.0).unwrap();
    b.add_link_pair(s1, r2, emits, emitted_by, 1.5).unwrap();
    b.add_terms(r0, tags, &[0, 1, 1]).unwrap();
    b.add_terms(r2, tags, &[3]).unwrap();
    b.add_numeric(s0, temp, -2.5).unwrap();
    b.add_numeric(s1, temp, 3.25).unwrap();
    // rp-1 carries no attributes at all — the incomplete case.
    let graph = b.build().unwrap();
    let model = GenClusModel {
        theta: MembershipMatrix::from_rows(
            &[
                vec![0.9, 0.1],
                vec![0.2, 0.8],
                vec![0.85, 0.15],
                vec![0.75, 0.25],
                vec![0.1, 0.9],
            ],
            2,
        ),
        gamma: vec![1.5, 0.75],
        components: vec![
            ClusterComponents::Categorical(CategoricalComponents::from_rows(
                &[vec![0.4, 0.4, 0.1, 0.1], vec![0.1, 0.1, 0.2, 0.6]],
                1e-9,
            )),
            ClusterComponents::Gaussian(GaussianComponents::from_params(
                vec![-2.5, 3.25],
                vec![0.5, 0.25],
                1e-6,
            )),
        ],
        attributes: vec![tags, temp],
        theta_smoothing: 0.05,
    };
    (graph, model)
}

/// Shared load-and-serve assertions: every committed fixture, whatever its
/// version, must decode to the same logical network + model and be
/// immediately servable.
fn assert_fixture_serves(version: u32) {
    let bytes = std::fs::read(fixture_path(version))
        .expect("fixture snapshot missing — run the regenerate_fixture test");
    let snap = Snapshot::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("v{version} fixture must keep loading: {e}"));
    assert_eq!(snap.header().version, version);
    assert_eq!(snap.graph().n_objects(), 5);
    assert_eq!(snap.graph().n_links(), 6);
    assert_eq!(snap.model().n_clusters(), 2);
    assert_eq!(snap.model().gamma, vec![1.5, 0.75]);
    assert_eq!(snap.model().theta_smoothing, 0.05);
    assert_eq!(snap.theta_row(0), &[0.9, 0.1]);
    let st0 = snap.graph().require_object_by_name("st-0").unwrap();
    assert_eq!(snap.model().membership(st0), &[0.9, 0.1]);
    // The loaded snapshot is immediately servable.
    let engine = QueryEngine::new(snap, 1);
    let resp = engine.handle_line(r#"{"op":"top_k","object":"rp-0","k":2,"type":"report"}"#);
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{resp}");
    assert_eq!(v.get("results").unwrap().as_arr().unwrap().len(), 2);
}

#[test]
fn committed_v1_fixture_still_loads() {
    assert_fixture_serves(1);
}

#[test]
fn committed_current_fixture_loads() {
    assert_fixture_serves(SCHEMA_VERSION);
}

#[test]
fn current_layout_is_frozen() {
    let (graph, model) = fixture_parts();
    let current = genclus_serve::snapshot::to_bytes(&graph, &model);
    let committed = std::fs::read(fixture_path(SCHEMA_VERSION))
        .expect("fixture snapshot missing — run the regenerate_fixture test");
    assert_eq!(
        current, committed,
        "the v{SCHEMA_VERSION} snapshot layout changed — bump SCHEMA_VERSION \
         and add a new fixture instead of redefining a released version"
    );
}

/// Writes the current version's fixture. Run only when introducing a new
/// schema version; never overwrite an old version's fixture.
#[test]
#[ignore]
fn regenerate_fixture() {
    let (graph, model) = fixture_parts();
    let path = fixture_path(SCHEMA_VERSION);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(path, genclus_serve::snapshot::to_bytes(&graph, &model)).unwrap();
}
