//! Refresh-subsystem properties:
//!
//! * warm-starting from a **converged** snapshot with an **empty** delta is
//!   a fixed point — `Θ` moves ≤ 1e-9 per entry and the `g₁` objective does
//!   not decrease (the whole point of seeding EM from the served state);
//! * the same holds through the serving wire path (`refresh` op on a
//!   [`RefreshableEngine`]), and the refreshed snapshot still answers
//!   queries;
//! * committed growth refreshes into a model that covers old and new
//!   objects, and the refreshed snapshot round-trips byte-identically.

use genclus_core::objective::g1;
use genclus_core::{GenClus, GenClusConfig, InitStrategy};
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// A randomized two-type planted network: relation `ab`/`ba` joins the
/// types, `aa` adds intra-type noise, observations are ~40% missing.
fn random_network(seed: u64, n_per_type: usize) -> (HinGraph, Vec<AttributeId>) {
    let mut rng = genclus_stats::seeded_rng(seed);
    let mut s = Schema::new();
    let ta = s.add_object_type("A");
    let tb = s.add_object_type("B");
    let ab = s.add_relation("ab", ta, tb);
    let ba = s.add_relation("ba", tb, ta);
    let aa = s.add_relation("aa", ta, ta);
    let num = s.add_numerical_attribute("num");
    let mut b = HinBuilder::new(s);
    let a_ids: Vec<_> = (0..n_per_type)
        .map(|i| b.add_object(ta, format!("a{i}")))
        .collect();
    let b_ids: Vec<_> = (0..n_per_type)
        .map(|i| b.add_object(tb, format!("b{i}")))
        .collect();
    let cluster = |i: usize| i % 2;
    for i in 0..n_per_type {
        b.add_link(a_ids[i], b_ids[i], ab, 1.0).unwrap();
        b.add_link(b_ids[i], a_ids[i], ba, 1.0).unwrap();
        let mut placed = 0;
        while placed < 2 {
            let j = rng.gen_range(0..n_per_type);
            if cluster(j) == cluster(i) {
                b.add_link(a_ids[i], b_ids[j], ab, rng.gen_range(0.5..2.0))
                    .unwrap();
                b.add_link(b_ids[j], a_ids[i], ba, rng.gen_range(0.5..2.0))
                    .unwrap();
                placed += 1;
            }
        }
        let j = rng.gen_range(0..n_per_type);
        if j != i {
            b.add_link(a_ids[i], a_ids[j], aa, rng.gen_range(0.5..2.0))
                .unwrap();
        }
        if rng.gen_bool(0.6) {
            let mu = if cluster(i) == 0 { -3.0 } else { 3.0 };
            for _ in 0..rng.gen_range(1..4) {
                b.add_numeric(a_ids[i], num, mu + 0.3 * rng.gen::<f64>())
                    .unwrap();
            }
        }
    }
    (b.build().unwrap(), vec![num])
}

/// Deep-convergence configuration: the ≤ 1e-9 fixed-point comparison needs
/// the fitted rows essentially *at* the fixed point (a stopping residual δ
/// amplifies to ≈ δ/(1−ρ) for contraction factor ρ).
fn deep_config(attrs: &[AttributeId], seed: u64) -> GenClusConfig {
    let mut cfg = GenClusConfig::new(2, attrs.to_vec()).with_seed(seed);
    cfg.outer_iters = 40;
    cfg.em_iters = 6000;
    cfg.em_tol = 1e-14;
    cfg.gamma_tol = 1e-11;
    cfg.init = InitStrategy::BestOfSeeds {
        candidates: 2,
        warmup_iters: 3,
    };
    cfg
}

/// Whether the fit actually reached its tolerances (a few randomized
/// instances settle into EM limit cycles or exhaust the outer budget —
/// fixed-point properties are only meaningful for converged fits).
fn converged(fit: &genclus_core::GenClusFit, cfg: &GenClusConfig) -> bool {
    let records = &fit.history.records;
    let Some(last) = records.last() else {
        return false;
    };
    if last.em_iterations >= cfg.em_iters {
        return false;
    }
    if records.len() < 2 {
        return false;
    }
    let prev = &records[records.len() - 2];
    let gamma_delta = last
        .gamma
        .iter()
        .zip(&prev.gamma)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    gamma_delta < cfg.gamma_tol
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: an empty-delta refresh of a converged
    /// snapshot is a numerical no-op, both through `fit_warm` directly and
    /// through the serving engine's `refresh` op.
    #[test]
    fn empty_delta_refresh_is_a_fixed_point(seed in any::<u64>(), n in 5usize..10) {
        let (graph, attrs) = random_network(seed, n);
        let cfg = deep_config(&attrs, seed);
        let runner = GenClus::new(cfg.clone()).unwrap();
        let fit = runner.fit(&graph).unwrap();
        prop_assume!(converged(&fit, &cfg));
        let old = &fit.model;
        let g1_old = g1(&graph, &attrs, &old.theta, &old.components, &old.gamma);

        // Direct core path: one warm re-fit.
        let warm = runner.fit_warm(&graph, old).unwrap();
        let theta_delta = warm.model.theta.max_abs_diff(&old.theta);
        prop_assert!(
            theta_delta <= 1e-9,
            "seed {seed}: warm re-fit moved Θ by {theta_delta}"
        );
        let g1_new = g1(
            &graph,
            &attrs,
            &warm.model.theta,
            &warm.model.components,
            &warm.model.gamma,
        );
        let slack = 1e-9 * (1.0 + g1_old.abs());
        prop_assert!(
            g1_new >= g1_old - slack,
            "seed {seed}: objective decreased {g1_old} → {g1_new}"
        );

        // Serving wire path: load the snapshot, refresh with nothing
        // pending, and compare the swapped-in Θ.
        let bytes = genclus_serve::snapshot::to_bytes(&graph, old);
        let snapshot = Snapshot::from_bytes(&bytes).unwrap();
        let policy = RefreshPolicy {
            outer_iters: 2,
            em_iters: cfg.em_iters,
            em_tol: cfg.em_tol,
            gamma_tol: cfg.gamma_tol,
            ..RefreshPolicy::default()
        };
        let mut engine = RefreshableEngine::new(snapshot, 1, policy);
        let response = engine.handle_line(r#"{"op":"refresh"}"#);
        let v = Json::parse(&response).unwrap();
        prop_assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{}", response);
        prop_assert_eq!(v.get("objects_added").unwrap().as_usize(), Some(0));
        let refreshed = engine.engine().snapshot().model();
        let served_delta = refreshed.theta.max_abs_diff(&old.theta);
        prop_assert!(
            served_delta <= 1e-9,
            "seed {seed}: served refresh moved Θ by {served_delta}"
        );
        // The refreshed engine still answers.
        let m = engine.handle_line(r#"{"op":"membership","object":"a0"}"#);
        prop_assert!(m.contains("\"ok\":true"), "{}", m);
    }

    /// Growth + refresh: committed objects become part of the model, old
    /// rows stay close (no catastrophic forgetting from a short warm
    /// re-fit), and the refreshed snapshot round-trips byte-identically.
    #[test]
    fn grown_refresh_covers_old_and_new_objects(seed in any::<u64>(), n in 5usize..9) {
        let (graph, attrs) = random_network(seed, n);
        let cfg = deep_config(&attrs, seed);
        let fit = GenClus::new(cfg.clone()).unwrap().fit(&graph).unwrap();
        prop_assume!(converged(&fit, &cfg));

        let bytes = genclus_serve::snapshot::to_bytes(&graph, &fit.model);
        let mut engine = RefreshableEngine::new(
            Snapshot::from_bytes(&bytes).unwrap(),
            1,
            RefreshPolicy::default(),
        );
        // Commit two new A objects linked into opposite planted clusters,
        // the first also receiving an old→new link (an existing A points at
        // it via `aa` — staged as an overflow link of the old source).
        for (name, anchor) in [("fresh0", "b0"), ("fresh1", "b1")] {
            let line = format!(
                r#"{{"op":"fold_in","links":[["ab","{anchor}",1.0]],"in_links":[["aa","a0",1.0]],"commit":"{name}"}}"#
            );
            let resp = engine.handle_line(&line);
            prop_assert!(resp.contains("\"ok\":true"), "{}", resp);
        }
        // A third commit links to a *staged* object of the same window
        // (aa: fresh2 → fresh0) and receives a staged→staged in_link from
        // fresh0's side too.
        let resp = engine.handle_line(
            r#"{"op":"fold_in","links":[["aa","fresh0",1.0],["ab","b0",1.0]],"in_links":[["aa","fresh0",1.0]],"commit":"fresh2"}"#,
        );
        prop_assert!(resp.contains("\"ok\":true"), "{}", resp);

        let resp = engine.handle_line(r#"{"op":"refresh"}"#);
        let v = Json::parse(&resp).unwrap();
        prop_assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "{}", resp);
        prop_assert_eq!(v.get("objects_added").unwrap().as_usize(), Some(3));
        prop_assert_eq!(v.get("links_added").unwrap().as_usize(), Some(7));

        {
            let refreshed = engine.engine().snapshot();
            prop_assert_eq!(refreshed.graph().n_objects(), graph.n_objects() + 3);
            prop_assert_eq!(
                refreshed.model().theta.n_objects(),
                graph.n_objects() + 3,
                "the refreshed Θ must cover the appended objects"
            );
            prop_assert_eq!(refreshed.graph().n_links(), graph.n_links() + 7);
            prop_assert!(
                !refreshed.graph().has_overflow(),
                "served snapshots are compacted"
            );
            // The old source really grew.
            let a0 = refreshed.graph().object_by_name("a0").unwrap();
            let g_old = Snapshot::from_bytes(&bytes).unwrap();
            let old_degree = g_old.graph().out_degree(a0);
            prop_assert_eq!(refreshed.graph().out_degree(a0), old_degree + 2);
        }
        // Old and new objects both answer membership queries.
        for name in ["a0", "b0", "fresh0", "fresh1", "fresh2"] {
            let m = engine.handle_line(&format!(r#"{{"op":"membership","object":"{name}"}}"#));
            prop_assert!(m.contains("\"ok\":true"), "{name}: {}", m);
        }
        // Refreshed snapshot bytes round-trip byte-identically.
        let raw = engine.engine().snapshot().raw_bytes().to_vec();
        let again = genclus_serve::snapshot::to_bytes(
            Snapshot::from_bytes(&raw).unwrap().graph(),
            Snapshot::from_bytes(&raw).unwrap().model(),
        );
        prop_assert_eq!(again, raw);
    }
}
