//! The *ack ⇒ replayable* contract over TCP, end-to-end through the
//! binary: `genclus_serve --listen` with a WAL, several concurrent
//! clients (commits past the refresh threshold racing reads and metrics
//! scrapes), SIGKILL mid-stream, restart, and every commit whose ack was
//! read back must be present — refreshed commits answer `membership`,
//! still-staged ones are known to the commit namespace ("already
//! staged"), and the restart banner reports the replay.
//!
//! This is the TCP twin of `tests/crash_recovery.rs`: same durability
//! contract, but the acks now travel through the mutation lane while 3
//! other connections hammer the lock-free read path.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::{HinBuilder, Schema};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn snapshot_bytes() -> Vec<u8> {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..6)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for group in [[0usize, 1, 2], [3, 4, 5]] {
        for &i in &group {
            for &j in &group {
                if i != j {
                    b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                }
            }
        }
    }
    b.add_numeric(vs[0], reading, -5.0).unwrap();
    b.add_numeric(vs[3], reading, 5.0).unwrap();
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    genclus_serve::snapshot::to_bytes(&graph, &fit.model)
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genclus-net-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("model.gcsnap"), snapshot_bytes()).unwrap();
    dir
}

/// The binary in `--listen` mode: stdin held open keeps it serving,
/// stderr is drained on a thread (both for the `listening on` address and
/// for the recovery banner, and so the pipe can never fill and stall the
/// process).
struct TcpServer {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
    stderr: Arc<Mutex<Vec<String>>>,
}

impl TcpServer {
    fn spawn(dir: &std::path::Path, extra: &[&str]) -> Self {
        let snap = dir.join("model.gcsnap");
        let mut child = Command::new(env!("CARGO_BIN_EXE_genclus_serve"))
            .arg("--snapshot")
            .arg(&snap)
            .arg("--wal")
            .arg(dir.join("commits.gcwal"))
            .arg("--refresh-save")
            .arg(&snap)
            .args(["--listen", "127.0.0.1:0", "--batch", "1"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn genclus_serve --listen");
        let stdin = child.stdin.take().unwrap();
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&lines);
        let stderr = BufReader::new(child.stderr.take().unwrap());
        std::thread::spawn(move || {
            for line in stderr.lines().map_while(Result::ok) {
                sink.lock().unwrap().push(line);
            }
        });
        // The ephemeral port arrives on stderr: `…: listening on <addr>`.
        let deadline = Instant::now() + Duration::from_secs(30);
        let addr = loop {
            if let Some(addr) = lines
                .lock()
                .unwrap()
                .iter()
                .find_map(|l| l.split("listening on ").nth(1))
                .map(|a| a.trim().parse::<SocketAddr>().expect("bound address"))
            {
                break addr;
            }
            assert!(Instant::now() < deadline, "server never announced a port");
            std::thread::sleep(Duration::from_millis(10));
        };
        Self {
            child,
            stdin: Some(stdin),
            addr,
            stderr: lines,
        }
    }

    fn stderr_contains(&self, needle: &str) -> bool {
        self.stderr
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains(needle))
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Self { stream, reader }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("request write");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("response read");
        assert!(!resp.is_empty(), "server closed before answering {line}");
        resp.trim_end().to_string()
    }

    fn ok(&mut self, line: &str) -> String {
        let resp = self.roundtrip(line);
        assert!(resp.contains(r#""ok":true"#), "{line} -> {resp}");
        resp
    }
}

#[test]
fn tcp_sigkill_drill_replays_every_acked_commit() {
    let dir = test_dir("drill");
    let flags = ["--refresh-after-objects", "2", "--refresh-background"];
    let s = TcpServer::spawn(&dir, &flags);
    let addr = s.addr;

    // Three reader connections hammer the lock-free path (membership,
    // stats, metrics scrapes) while a fourth drives commits through the
    // mutation lane — 4 concurrent clients minimum, per the drill.
    let readers: Vec<_> = (0..3)
        .map(|who| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for i in 0..15 {
                    match (who + i) % 3 {
                        0 => c.ok(r#"{"op":"stats"}"#),
                        1 => c.ok(&format!(r#"{{"op":"membership","object":"s{}"}}"#, i % 6)),
                        _ => c.ok(r#"{"op":"metrics"}"#),
                    };
                }
            })
        })
        .collect();

    let mut committer = Client::connect(addr);
    for name in ["k0", "k1", "k2", "k3", "k4"] {
        committer.ok(&format!(
            r#"{{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"{name}"}}"#
        ));
    }
    for r in readers {
        r.join().expect("reader client");
    }
    // Refreshes fired after k1 and k3; wait them out so both snapshots
    // are persisted and the log is truncated down to the staged k4 —
    // the kill then lands past real refresh/truncation cycles.
    let status = committer.ok(r#"{"op":"refresh_status","wait":true}"#);
    assert!(status.contains(r#""in_flight":false"#), "{status}");

    // Every ack above was read back over TCP. SIGKILL: no flush, no
    // goodbye, connections torn mid-stream.
    let mut child = s.child;
    child.kill().expect("SIGKILL");
    child.wait().unwrap();

    // Restart on the same snapshot + WAL. The recovery banner must
    // report the replay, and every acked commit must be present.
    let s = TcpServer::spawn(&dir, &flags);
    assert!(
        s.stderr_contains("replayed 1 commit"),
        "recovery banner missing: {:?}",
        s.stderr.lock().unwrap()
    );
    let mut c = Client::connect(s.addr);
    let status = c.ok(r#"{"op":"refresh_status"}"#);
    assert!(status.contains(r#""pending_objects":1"#), "{status}");
    for name in ["k0", "k1", "k2", "k3"] {
        c.ok(&format!(r#"{{"op":"membership","object":"{name}"}}"#));
    }
    let dup = c.roundtrip(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"k4"}"#);
    assert!(dup.contains("already staged"), "{dup}");

    // The recovered server keeps serving: one more commit crosses the
    // threshold and refreshes k4 + k5 into the snapshot.
    c.ok(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"k5"}"#);
    c.ok(r#"{"op":"refresh_status","wait":true}"#);
    c.ok(r#"{"op":"membership","object":"k4"}"#);

    // Closing stdin is the graceful stop: drain, quiesce, exit 0.
    drop(c);
    let mut s = s;
    drop(s.stdin.take());
    assert!(s.child.wait().unwrap().success());

    std::fs::remove_dir_all(&dir).ok();
}
