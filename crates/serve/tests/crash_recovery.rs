//! End-to-end crash recovery through the `genclus_serve` binary.
//!
//! The library-level property tests (`tests/wal.rs`) simulate crashes with
//! the fault-injection hook; these tests kill the real process with
//! SIGKILL mid-stream and restart it with the same `--snapshot`/`--wal`
//! pair, asserting that every commit whose ack was read back survived —
//! the operational shape of the *ack ⇒ replayable* contract. A separate
//! test closes the binary's stdout (a dying consumer) and asserts the
//! broken pipe quiesces like EOF: clean exit, durable state intact.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::{HinBuilder, Schema};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

fn snapshot_bytes() -> Vec<u8> {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..6)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for group in [[0usize, 1, 2], [3, 4, 5]] {
        for &i in &group {
            for &j in &group {
                if i != j {
                    b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                }
            }
        }
    }
    b.add_numeric(vs[0], reading, -5.0).unwrap();
    b.add_numeric(vs[3], reading, 5.0).unwrap();
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    genclus_serve::snapshot::to_bytes(&graph, &fit.model)
}

struct Server {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Server {
    /// Spawns the binary against `dir`'s snapshot + WAL, batch size 1 so
    /// every request line is answered (and its commit fsynced) before the
    /// next is sent — each read-back ack is a real durability point.
    fn spawn(dir: &std::path::Path, extra: &[&str]) -> Self {
        let snap = dir.join("model.gcsnap");
        let mut child = Command::new(env!("CARGO_BIN_EXE_genclus_serve"))
            .arg("--snapshot")
            .arg(&snap)
            .arg("--wal")
            .arg(dir.join("commits.gcwal"))
            .arg("--refresh-save")
            .arg(&snap)
            .args(["--batch", "1"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn genclus_serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Self {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request and reads its ack back.
    fn roundtrip(&mut self, line: &str) -> String {
        writeln!(self.stdin, "{line}").expect("request write");
        self.stdin.flush().expect("request flush");
        let mut resp = String::new();
        self.stdout.read_line(&mut resp).expect("response read");
        assert!(!resp.is_empty(), "server died before answering {line}");
        resp
    }

    fn commit(&mut self, name: &str) {
        let resp = self.roundtrip(&format!(
            r#"{{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"{name}"}}"#
        ));
        assert!(resp.contains(r#""ok":true"#), "commit {name}: {resp}");
    }
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("genclus-crash-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("model.gcsnap"), snapshot_bytes()).unwrap();
    dir
}

#[test]
fn sigkill_mid_stream_loses_no_acked_commit() {
    let dir = test_dir("sigkill");
    // Refresh every 2 commits, so the kill lands past at least one
    // persisted-refresh + log-truncation cycle.
    let mut s = Server::spawn(&dir, &["--refresh-after-objects", "2"]);
    for name in ["c0", "c1", "c2", "c3", "c4"] {
        s.commit(name);
    }
    // Every ack above was read back; SIGKILL gives the process no chance
    // to flush or clean up anything it hadn't already made durable.
    s.child.kill().expect("SIGKILL");
    s.child.wait().unwrap();

    let mut s = Server::spawn(&dir, &["--refresh-after-objects", "2"]);
    // Refreshes fired after c1 and c3 (and were persisted + truncated),
    // leaving c4 staged; recovery must reproduce exactly that split.
    let status = s.roundtrip(r#"{"op":"refresh_status"}"#);
    assert!(status.contains(r#""pending_objects":1"#), "{status}");
    assert!(status.contains(r#""wal_records":1"#), "{status}");
    // Served commits answer membership; the staged one is known to the
    // commit namespace (a duplicate is rejected as already staged).
    for name in ["c0", "c1", "c2", "c3"] {
        let resp = s.roundtrip(&format!(r#"{{"op":"membership","object":"{name}"}}"#));
        assert!(resp.contains(r#""ok":true"#), "{name}: {resp}");
    }
    let dup = s.roundtrip(r#"{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"c4"}"#);
    assert!(dup.contains("already staged"), "{dup}");
    // The recovered server keeps serving: one more commit crosses the
    // threshold and refreshes c4 + c5 into the snapshot.
    s.commit("c5");
    let resp = s.roundtrip(r#"{"op":"membership","object":"c4"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");
    drop(s.stdin);
    assert!(s.child.wait().unwrap().success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sigkill_without_any_refresh_replays_the_whole_log() {
    let dir = test_dir("sigkill-noref");
    let mut s = Server::spawn(&dir, &[]);
    for name in ["c0", "c1", "c2"] {
        s.commit(name);
    }
    s.child.kill().expect("SIGKILL");
    s.child.wait().unwrap();

    let mut s = Server::spawn(&dir, &[]);
    let status = s.roundtrip(r#"{"op":"refresh_status"}"#);
    assert!(status.contains(r#""pending_objects":3"#), "{status}");
    assert!(status.contains(r#""wal_records":3"#), "{status}");
    // A manual refresh folds the recovered window in and truncates.
    let resp = s.roundtrip(r#"{"op":"refresh"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");
    for name in ["c0", "c1", "c2"] {
        let resp = s.roundtrip(&format!(r#"{{"op":"membership","object":"{name}"}}"#));
        assert!(resp.contains(r#""ok":true"#), "{name}: {resp}");
    }
    let status = s.roundtrip(r#"{"op":"refresh_status"}"#);
    assert!(status.contains(r#""wal_records":0"#), "{status}");
    drop(s.stdin);
    assert!(s.child.wait().unwrap().success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn broken_pipe_quiesces_and_exits_cleanly() {
    let dir = test_dir("brokenpipe");
    let mut s = Server::spawn(&dir, &[]);
    s.commit("c0");
    // The consumer dies: close the read end of the binary's stdout.
    drop(s.stdout);
    // The next flushed response hits EPIPE inside the binary; it must
    // quiesce and exit 0, not crash. Keep feeding lines until the process
    // notices (our own writes may also fail with EPIPE once it exits —
    // that is expected, not an error).
    for _ in 0..100 {
        if writeln!(s.stdin, r#"{{"op":"refresh_status"}}"#)
            .and_then(|()| s.stdin.flush())
            .is_err()
        {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    drop(s.stdin);
    let status = s.child.wait().unwrap();
    assert!(status.success(), "broken pipe must exit cleanly: {status}");

    // The acked commit survived the early exit.
    let mut s = Server::spawn(&dir, &[]);
    let status = s.roundtrip(r#"{"op":"refresh_status"}"#);
    assert!(status.contains(r#""pending_objects":1"#), "{status}");
    drop(s.stdin);
    s.child.wait().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
