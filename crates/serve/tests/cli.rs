//! Argument-parsing and stdio-loop regressions for the `genclus_serve`
//! binary:
//!
//! * `--metrics-interval 0` used to fall through to the generic usage
//!   dump; an interval of 0 would busy-spin the dump thread. It must be
//!   rejected at parse time with a *specific* error, before any snapshot
//!   is touched;
//! * a request line over `--max-request-bytes` on the **stdio** path is
//!   answered with a structured `BadRequest` and the loop keeps serving —
//!   unlike TCP, where the offending connection closes, stdin has exactly
//!   one (trusted-ish) peer and killing the stream would kill the
//!   process.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::{HinBuilder, Schema};
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

fn snapshot_bytes() -> Vec<u8> {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..6)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for group in [[0usize, 1, 2], [3, 4, 5]] {
        for &i in &group {
            for &j in &group {
                if i != j {
                    b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                }
            }
        }
    }
    b.add_numeric(vs[0], reading, -5.0).unwrap();
    b.add_numeric(vs[3], reading, 5.0).unwrap();
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    genclus_serve::snapshot::to_bytes(&graph, &fit.model)
}

#[test]
fn metrics_interval_zero_is_a_specific_usage_error() {
    // Parse-time rejection: the snapshot path is bogus on purpose — the
    // error must fire before anything is loaded.
    let out = Command::new(env!("CARGO_BIN_EXE_genclus_serve"))
        .args(["--snapshot", "/nonexistent.gcsnap"])
        .args(["--metrics-dump", "/tmp/unused.json"])
        .args(["--metrics-interval", "0"])
        .output()
        .expect("run genclus_serve");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--metrics-interval must be at least 1"),
        "want a specific error, got: {stderr}"
    );
    assert!(stderr.contains("busy-spin"), "explain *why*: {stderr}");
    // ... and not the generic usage dump that used to swallow this.
    assert!(!stderr.contains("usage: genclus_serve"), "{stderr}");
}

#[test]
fn stdio_over_limit_line_answers_bad_request_and_keeps_serving() {
    let dir = std::env::temp_dir().join(format!("genclus-cli-overlimit-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("model.gcsnap");
    std::fs::write(&snap, snapshot_bytes()).unwrap();

    let mut child = Command::new(env!("CARGO_BIN_EXE_genclus_serve"))
        .arg("--snapshot")
        .arg(&snap)
        .args(["--batch", "1", "--max-request-bytes", "128"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn genclus_serve");
    let mut stdin = child.stdin.take().unwrap();
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut roundtrip = |stdin: &mut std::process::ChildStdin, line: &str| {
        writeln!(stdin, "{line}").unwrap();
        stdin.flush().unwrap();
        let mut resp = String::new();
        stdout.read_line(&mut resp).expect("response read");
        assert!(!resp.is_empty(), "server died answering {line}");
        resp
    };

    let resp = roundtrip(&mut stdin, r#"{"op":"stats"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");

    // A 4 KiB line against the 128-byte cap: one structured error,
    // in order, and the loop keeps going.
    let long = format!(r#"{{"op":"membership","object":"{}"}}"#, "x".repeat(4096));
    let resp = roundtrip(&mut stdin, &long);
    assert!(resp.contains(r#""ok":false"#), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");
    assert!(resp.contains("max-request-bytes"), "{resp}");

    let resp = roundtrip(&mut stdin, r#"{"op":"membership","object":"s0"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");

    drop(stdin);
    assert!(child.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
