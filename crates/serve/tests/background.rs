//! Wire-level properties of the background (double-buffered) refresh:
//!
//! * a query stream interleaved with an in-flight re-fit always answers
//!   from a **consistent** snapshot — the checksum echoed by `stats` stays
//!   the old one until the swap and the new one after, with no
//!   interleaving and no third value ever observed;
//! * the full scripted client flow works end-to-end: commit past the
//!   policy threshold → `refresh_started`, poll `refresh_status`, quiesce
//!   with `"wait":true`, and the post-swap snapshot serves the arrivals
//!   in `membership`/`top_k`.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;

/// A planted two-ring sensor network, sized so a forced-deep re-fit takes
/// measurable wall time (the ungated consistency test wants the refresh
/// window to actually overlap queries).
fn snapshot(n_per_ring: usize) -> Snapshot {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..2 * n_per_ring)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for ring in 0..2 {
        let base = ring * n_per_ring;
        for i in 0..n_per_ring {
            let j = (i + 1) % n_per_ring;
            b.add_link(vs[base + i], vs[base + j], nn, 1.0).unwrap();
            b.add_link(vs[base + j], vs[base + i], nn, 1.0).unwrap();
            let k = (i + 2) % n_per_ring;
            b.add_link(vs[base + i], vs[base + k], nn, 0.5).unwrap();
        }
        let mu = if ring == 0 { -5.0 } else { 5.0 };
        for i in 0..n_per_ring / 2 {
            b.add_numeric(vs[base + i], reading, mu + 0.1 * i as f64)
                .unwrap();
        }
    }
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    Snapshot::from_bytes(&genclus_serve::snapshot::to_bytes(&graph, &fit.model)).unwrap()
}

fn ok(response: &str) -> Json {
    let v = Json::parse(response).unwrap();
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "expected success, got {response}"
    );
    v
}

fn checksum(engine: &mut RefreshableEngine) -> String {
    ok(&engine.handle_line(r#"{"op":"stats"}"#))
        .get("checksum")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string()
}

#[test]
fn concurrent_reads_see_old_snapshot_until_swap_then_new() {
    // Force a deep, fixed-length re-fit so the background window has real
    // width; the serving thread races it with a read stream.
    let policy = RefreshPolicy {
        outer_iters: 3,
        em_iters: 200,
        em_tol: 0.0,
        gamma_tol: 0.0,
        background: true,
        ..RefreshPolicy::default()
    };
    let mut e = RefreshableEngine::new(snapshot(40), 1, policy);
    let old = checksum(&mut e);
    for i in 0..4 {
        ok(&e.handle_line(&format!(
            r#"{{"op":"fold_in","links":[["nn","s0",1.0],["nn","s1",1.0]],"commit":"n{i}"}}"#
        )));
    }
    let r = ok(&e.handle_line(r#"{"op":"refresh"}"#));
    assert_eq!(r.get("started"), Some(&Json::Bool(true)));

    // Interleave reads with the in-flight re-fit until the swap is
    // observed (bounded; the re-fit is finite).
    let mut observed: Vec<String> = Vec::new();
    let mut membership_during_flight = 0usize;
    for _ in 0..200_000 {
        observed.push(checksum(&mut e));
        if observed.last().unwrap() == &old {
            // Old-snapshot reads really answer (not just stats).
            if membership_during_flight < 3 {
                ok(&e.handle_line(r#"{"op":"membership","object":"s0"}"#));
                membership_during_flight += 1;
            }
        } else {
            break;
        }
    }
    let new = observed.last().unwrap().clone();
    assert_ne!(new, old, "the swap must eventually be observed");
    // Consistency: old* then new — monotone, exactly two values, one switch.
    let switch = observed.iter().position(|c| *c != old).unwrap();
    assert!(observed[..switch].iter().all(|c| *c == old));
    assert!(observed[switch..].iter().all(|c| *c == new));
    // Post-swap state serves everything.
    assert_eq!(e.refreshes(), 1);
    let s = ok(&e.handle_line(r#"{"op":"stats"}"#));
    assert_eq!(s.get("n_objects").unwrap().as_usize(), Some(84));
    for i in 0..4 {
        ok(&e.handle_line(&format!(r#"{{"op":"membership","object":"n{i}"}}"#)));
    }
}

#[test]
fn scripted_flow_commit_poll_wait_query() {
    let policy = RefreshPolicy {
        max_pending_objects: 2,
        background: true,
        ..RefreshPolicy::default()
    };
    let mut e = RefreshableEngine::new(snapshot(8), 2, policy);
    let lines: Vec<String> = vec![
        r#"{"id":1,"op":"fold_in","links":[["nn","s0",1.0]],"commit":"BG0"}"#.into(),
        r#"{"id":2,"op":"fold_in","links":[["nn","BG0",1.0]],"commit":"BG1"}"#.into(),
        r#"{"id":3,"op":"refresh_status"}"#.into(),
        r#"{"id":4,"op":"refresh_status","wait":true}"#.into(),
        r#"{"id":5,"op":"membership","object":"BG0"}"#.into(),
        // k = everyone: the assertion is presence of the sibling arrival,
        // not tie-breaking among near-identical same-cluster rows.
        r#"{"id":6,"op":"top_k","object":"BG1","k":17,"sim":"cosine","type":"sensor"}"#.into(),
    ];
    let responses = e.handle_batch(&lines);
    assert_eq!(responses.len(), 6);
    for (i, r) in responses.iter().enumerate() {
        let v = ok(r);
        assert_eq!(v.get("id").unwrap().as_usize(), Some(i + 1));
    }
    // The threshold-crossing commit reports the hand-off, not an outcome.
    let commit2 = Json::parse(&responses[1]).unwrap();
    assert_eq!(commit2.get("refresh_started"), Some(&Json::Bool(true)));
    assert!(commit2.get("refreshed").is_none());
    // The quiesce point reports the landed outcome.
    let waited = Json::parse(&responses[3]).unwrap();
    assert_eq!(waited.get("in_flight"), Some(&Json::Bool(false)));
    let outcome = waited.get("last_outcome").unwrap();
    assert_eq!(outcome.get("objects_added").unwrap().as_usize(), Some(2));
    // Post-swap reads in the same batch see the new snapshot.
    let ranked = Json::parse(&responses[5]).unwrap();
    let names: Vec<String> = ranked
        .get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|e| e.as_arr().unwrap()[0].as_str().unwrap().to_string())
        .collect();
    assert!(
        names.iter().any(|n| n == "BG0"),
        "top_k ranks the sibling arrival: {names:?}"
    );
    assert_eq!(e.refreshes(), 1);
}
