//! Wire-level contract of the `{"op":"metrics"}` op:
//!
//! * request/op counters are **monotone** across a scripted session and
//!   attribute every request to the right op (including errors);
//! * latency quantiles are ordered (`p50 ≤ p90 ≤ p99 ≤ max`);
//! * a background refresh surfaces a complete `refresh.last` span (mode,
//!   trigger, staged window, iteration counts, wall time) and live EM
//!   trace totals once the swap lands;
//! * the JSON **key order is byte-stable**: two independent sessions
//!   running the same script render the same key sequence, so dashboards
//!   can rely on it (the *exact* order is pinned against a manifest by
//!   `genclus-lint`'s `metrics-key-order` rule);
//! * the commit WAL's append counts and recovery stats show up both in
//!   `metrics` and — `wal_records`/`wal_error` — folded into `stats`.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;

/// A small planted two-ring sensor network, fitted and snapshotted — the
/// same fixture idiom as the background-refresh tests.
fn snapshot(n_per_ring: usize) -> Snapshot {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..2 * n_per_ring)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for ring in 0..2 {
        let base = ring * n_per_ring;
        for i in 0..n_per_ring {
            let j = (i + 1) % n_per_ring;
            b.add_link(vs[base + i], vs[base + j], nn, 1.0).unwrap();
            b.add_link(vs[base + j], vs[base + i], nn, 1.0).unwrap();
        }
        let mu = if ring == 0 { -5.0 } else { 5.0 };
        for i in 0..n_per_ring / 2 {
            b.add_numeric(vs[base + i], reading, mu + 0.1 * i as f64)
                .unwrap();
        }
    }
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    Snapshot::from_bytes(&genclus_serve::snapshot::to_bytes(&graph, &fit.model)).unwrap()
}

fn ok(response: &str) -> Json {
    let v = Json::parse(response).unwrap();
    assert_eq!(
        v.get("ok"),
        Some(&Json::Bool(true)),
        "expected success, got {response}"
    );
    v
}

fn metrics(engine: &mut RefreshableEngine) -> Json {
    ok(&engine.handle_line(r#"{"op":"metrics"}"#))
}

/// Walks `path` through nested objects.
fn field<'a>(v: &'a Json, path: &[&str]) -> &'a Json {
    let mut cur = v;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing key {key} in {path:?}"));
    }
    cur
}

fn num(v: &Json, path: &[&str]) -> f64 {
    field(v, path)
        .as_f64()
        .unwrap_or_else(|| panic!("{path:?} is not a number"))
}

#[test]
fn counters_are_monotone_and_every_op_is_attributed() {
    let mut e = RefreshableEngine::new(snapshot(12), 1, RefreshPolicy::default());

    let mut last_total = -1.0;
    for i in 0..3 {
        ok(&e.handle_line(&format!(r#"{{"op":"membership","object":"s{i}"}}"#)));
        let m = metrics(&mut e);
        let total = num(&m, &["requests", "total"]);
        assert!(
            total > last_total,
            "requests.total must be monotone: {total} after {last_total}"
        );
        last_total = total;
    }
    ok(&e.handle_line(r#"{"op":"stats"}"#));
    ok(&e.handle_line(r#"{"op":"top_k","object":"s0","k":3,"type":"sensor"}"#));
    // One failing request: unknown op, attributed to `other` + errors.
    let bad = e.handle_line(r#"{"op":"frobnicate"}"#);
    assert!(bad.contains("\"ok\":false"), "{bad}");

    let m = metrics(&mut e);
    assert_eq!(num(&m, &["ops", "membership", "count"]), 3.0);
    assert_eq!(num(&m, &["ops", "stats", "count"]), 1.0);
    assert_eq!(num(&m, &["ops", "top_k", "count"]), 1.0);
    assert_eq!(num(&m, &["ops", "other", "count"]), 1.0);
    assert_eq!(num(&m, &["requests", "errors"]), 1.0);
    // The metrics op counts itself (after rendering, so each response
    // reflects only the requests before it): 3 in-loop + 1 final so far.
    assert_eq!(num(&m, &["ops", "metrics", "count"]), 3.0);
    // total = 3 membership + 1 stats + 1 top_k + 1 error + 3 metrics.
    assert_eq!(num(&m, &["requests", "total"]), 9.0);

    // Quantiles of every exercised op are ordered and finite.
    for op in ["membership", "stats", "top_k", "metrics"] {
        let p50 = num(&m, &["ops", op, "p50_us"]);
        let p90 = num(&m, &["ops", op, "p90_us"]);
        let p99 = num(&m, &["ops", op, "p99_us"]);
        let max = num(&m, &["ops", op, "max_us"]);
        assert!(
            0.0 <= p50 && p50 <= p90 && p90 <= p99 && p99 <= max,
            "{op}: p50 {p50} p90 {p90} p99 {p99} max {max}"
        );
        assert!(max > 0.0, "{op}: a served request takes nonzero time");
    }
    // Untouched subsystems report zeros, not garbage — including the
    // net block on a stdio-only session.
    assert_eq!(num(&m, &["wal", "appends"]), 0.0);
    assert_eq!(num(&m, &["refresh", "completed"]), 0.0);
    assert_eq!(field(&m, &["refresh", "last"]), &Json::Null);
    for key in ["accepted", "active", "rejected", "over_limit"] {
        assert_eq!(num(&m, &["net", key]), 0.0);
    }
}

#[test]
fn background_refresh_surfaces_a_complete_span_and_em_trace() {
    let policy = RefreshPolicy {
        max_pending_objects: 2,
        outer_iters: 2,
        em_iters: 10,
        em_tol: 0.0,
        gamma_tol: 0.0,
        background: true,
        ..RefreshPolicy::default()
    };
    let mut e = RefreshableEngine::new(snapshot(12), 1, policy);
    for i in 0..2 {
        ok(&e.handle_line(&format!(
            r#"{{"op":"fold_in","links":[["nn","s0",1.0],["nn","s1",1.0]],"commit":"n{i}"}}"#
        )));
    }
    // The second commit crossed the object threshold; quiesce on the
    // in-flight background re-fit through the wire.
    ok(&e.handle_line(r#"{"op":"refresh_status","wait":true}"#));
    assert_eq!(e.refreshes(), 1);

    let m = metrics(&mut e);
    assert_eq!(num(&m, &["refresh", "completed"]), 1.0);
    assert_eq!(num(&m, &["refresh", "failed"]), 0.0);
    assert_eq!(field(&m, &["refresh", "in_flight"]), &Json::Bool(false));
    assert_eq!(num(&m, &["refresh", "pending_objects"]), 0.0);
    assert_eq!(num(&m, &["refresh", "pending_links"]), 0.0);
    assert!(num(&m, &["refresh", "wall_max_ms"]) > 0.0);

    let last = field(&m, &["refresh", "last"]);
    assert_eq!(last.get("mode"), Some(&Json::str("background")));
    assert_eq!(last.get("trigger"), Some(&Json::str("objects")));
    assert_eq!(num(last, &["staged_objects"]), 2.0);
    assert!(num(last, &["staged_links"]) >= 2.0);
    assert!(num(last, &["outer_iterations"]) >= 1.0);
    assert!(num(last, &["em_iterations"]) >= 1.0);
    assert!(num(last, &["refit_ms"]) > 0.0);
    assert!(num(last, &["wall_ms"]) >= num(last, &["refit_ms"]));
    assert_eq!(last.get("persisted"), Some(&Json::Bool(false)));
    assert_eq!(last.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(last.get("error"), Some(&Json::Null));

    // The warm EM streamed per-iteration trace events into the registry.
    assert!(num(&m, &["em", "outer_iterations"]) >= 1.0);
    assert!(num(&m, &["em", "inner_iterations"]) >= 1.0);
    assert!(num(&m, &["em", "outer_max_ms"]) > 0.0);
    assert!(num(&m, &["em", "last_objective"]).is_finite());

    // The swapped-in engine keeps recording into the same registry.
    ok(&e.handle_line(r#"{"op":"membership","object":"n0"}"#));
    let m2 = metrics(&mut e);
    assert!(num(&m2, &["requests", "total"]) > num(&m, &["requests", "total"]));
}

/// Collects every object key in rendering order, depth-first, so two
/// responses can be compared structurally.
fn key_paths(v: &Json, prefix: &str, out: &mut Vec<String>) {
    if let Some(obj) = v.as_obj() {
        for (k, val) in obj {
            let p = format!("{prefix}/{k}");
            out.push(p.clone());
            key_paths(val, &p, out);
        }
    } else if let Some(arr) = v.as_arr() {
        for (i, val) in arr.iter().enumerate() {
            key_paths(val, &format!("{prefix}/{i}"), out);
        }
    }
}

#[test]
fn metrics_json_key_order_is_byte_stable_across_sessions() {
    let session = || {
        let policy = RefreshPolicy {
            outer_iters: 2,
            em_iters: 5,
            em_tol: 0.0,
            gamma_tol: 0.0,
            ..RefreshPolicy::default()
        };
        let mut e = RefreshableEngine::new(snapshot(12), 1, policy);
        ok(&e.handle_line(r#"{"op":"membership","object":"s0"}"#));
        ok(&e.handle_line(
            r#"{"op":"fold_in","links":[["nn","s0",1.0],["nn","s1",1.0]],"commit":"n0"}"#,
        ));
        ok(&e.handle_line(r#"{"op":"refresh"}"#));
        metrics(&mut e)
    };
    let (a, b) = (session(), session());
    let (mut ka, mut kb) = (Vec::new(), Vec::new());
    key_paths(&a, "", &mut ka);
    key_paths(&b, "", &mut kb);
    assert_eq!(ka, kb, "metrics key order must not vary between sessions");

    // Version 2 appended `net`; everything before it is byte-identical
    // to version 1, so v1 consumers keep parsing. The exact key sequence
    // itself is no longer duplicated here: `genclus-lint`'s
    // `metrics-key-order` rule diffs the literals in `metrics.rs`'s
    // `region(metrics-schema)` spans against the pinned manifest
    // (`crates/lint/src/metrics_keys.txt`), so schema drift fails the
    // lint gate with a deliberate manifest bump as the only way through.
    assert_eq!(num(&a, &["schema_version"]), 2.0);
    // A refresh ran, so the span rendered (its key order is in the
    // manifest too).
    assert!(field(&a, &["refresh", "last"]).as_obj().is_some());
}

#[test]
fn wal_appends_and_recovery_surface_in_metrics_and_stats() {
    let dir = std::env::temp_dir().join(format!("genclus-metrics-wal-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("commits.gcwal");

    let mut e = {
        let (e, _) =
            RefreshableEngine::with_wal(snapshot(12), 1, RefreshPolicy::default(), &wal_path)
                .unwrap();
        e
    };
    for i in 0..2 {
        ok(&e.handle_line(&format!(
            r#"{{"op":"fold_in","links":[["nn","s0",1.0],["nn","s1",1.0]],"commit":"w{i}"}}"#
        )));
    }
    let m = metrics(&mut e);
    assert_eq!(num(&m, &["wal", "records"]), 2.0);
    assert_eq!(num(&m, &["wal", "appends"]), 2.0);
    let p50 = num(&m, &["wal", "append_p50_us"]);
    let max = num(&m, &["wal", "append_max_us"]);
    assert!(p50 > 0.0 && p50 <= max, "append p50 {p50} max {max}");
    assert_eq!(num(&m, &["wal", "replayed"]), 0.0);
    assert_eq!(field(&m, &["wal", "error"]), &Json::Null);

    // Satellite contract: the WAL state is folded into `stats` too.
    let s = ok(&e.handle_line(r#"{"op":"stats"}"#));
    assert_eq!(num(&s, &["wal_records"]), 2.0);
    assert_eq!(s.get("wal_error"), None, "healthy WAL reports no error");

    // A restart replays the log and reports it through metrics.
    drop(e);
    let (mut e2, _) =
        RefreshableEngine::with_wal(snapshot(12), 1, RefreshPolicy::default(), &wal_path).unwrap();
    let m2 = metrics(&mut e2);
    assert_eq!(num(&m2, &["wal", "replayed"]), 2.0);
    assert_eq!(num(&m2, &["wal", "skipped"]), 0.0);
    assert_eq!(num(&m2, &["wal", "records"]), 2.0);
    assert_eq!(num(&m2, &["refresh", "pending_objects"]), 2.0);

    std::fs::remove_dir_all(&dir).ok();
}
