//! Snapshot schema-version compatibility matrix.
//!
//! The committed-fixture tests (`tests/fixture.rs`) prove real historical
//! files keep loading; this suite fabricates snapshots of every version on
//! the fly and pins the *policy*:
//!
//! * a v1 payload (per-object name strings) loads through the
//!   [`genclus_hin::HinGraph::from_bytes_v1`] shim and decodes to the same
//!   logical network as its v2 re-encoding;
//! * a header claiming a version newer than [`SCHEMA_VERSION`] is rejected
//!   loudly with [`ServeError::UnsupportedVersion`], never misread;
//! * save → load → save is byte-identical in the current layout, and a
//!   loaded v1 snapshot re-saves as a byte-exact current-layout snapshot
//!   (lossless migration);
//! * version/layout mismatches (v2 header over v1 bytes and vice versa)
//!   fail loudly instead of decoding garbage.

use genclus_core::attr_model::{ClusterComponents, GaussianComponents};
use genclus_core::GenClusModel;
use genclus_hin::prelude::*;
use genclus_serve::prelude::*;
use genclus_serve::snapshot::{to_bytes, HEADER_LEN, MAGIC};
use genclus_stats::bytesio::{fnv1a64, pad8};
use genclus_stats::MembershipMatrix;

fn parts() -> (HinGraph, GenClusModel) {
    let mut s = Schema::new();
    let t = s.add_object_type("sensor");
    let nn = s.add_relation("nn", t, t);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let v0 = b.add_object(t, "alpha");
    let v1 = b.add_object(t, "beta");
    let v2 = b.add_object(t, "gamma-sensor");
    b.add_link(v0, v1, nn, 1.0).unwrap();
    b.add_link(v1, v2, nn, 2.0).unwrap();
    b.add_numeric(v0, reading, -1.0).unwrap();
    b.add_numeric(v2, reading, 1.0).unwrap();
    let graph = b.build().unwrap();
    let model = GenClusModel {
        theta: MembershipMatrix::from_rows(&[vec![0.9, 0.1], vec![0.5, 0.5], vec![0.2, 0.8]], 2),
        gamma: vec![1.25],
        components: vec![ClusterComponents::Gaussian(
            GaussianComponents::from_params(vec![-1.0, 1.0], vec![0.5, 0.5], 1e-6),
        )],
        attributes: vec![reading],
        theta_smoothing: 0.05,
    };
    (graph, model)
}

/// Fabricates a version-1 snapshot: the v1 graph layout under a v1 header.
/// Mirrors `snapshot::to_bytes` exactly except for the two v1 choices.
fn v1_snapshot_bytes(graph: &HinGraph, model: &GenClusModel) -> Vec<u8> {
    let mut payload = Vec::new();
    graph.to_bytes_v1(&mut payload);
    pad8(&mut payload);
    let model_start = payload.len();
    let theta_rel = model.to_bytes(&mut payload);
    let theta_offset = HEADER_LEN + model_start + theta_rel;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&1u32.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
    out.extend_from_slice(&(theta_offset as u64).to_le_bytes());
    out.extend_from_slice(&(model.theta.n_objects() as u64).to_le_bytes());
    out.extend_from_slice(&(model.theta.n_clusters() as u64).to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

#[test]
fn v1_loads_and_migrates_losslessly() {
    let (graph, model) = parts();
    let v1 = v1_snapshot_bytes(&graph, &model);
    let snap = Snapshot::from_bytes(&v1).expect("v1 loads through the shim");
    assert_eq!(snap.header().version, 1);
    assert_eq!(
        snap.graph().object_by_name("gamma-sensor"),
        graph.object_by_name("gamma-sensor")
    );
    assert_eq!(snap.theta_view(), model.theta.as_slice());
    // Re-saving the loaded v1 snapshot produces exactly the bytes a direct
    // current-layout save would: migration loses nothing and is stable.
    let migrated = to_bytes(snap.graph(), snap.model());
    assert_eq!(migrated, to_bytes(&graph, &model));
    assert_ne!(migrated, v1, "migration must land in the new layout");
}

#[test]
fn current_layout_round_trips_byte_identically() {
    let (graph, model) = parts();
    let bytes = to_bytes(&graph, &model);
    let snap = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(snap.header().version, SCHEMA_VERSION);
    assert_eq!(to_bytes(snap.graph(), snap.model()), bytes);
    // And the raw buffer the snapshot retained is the input verbatim.
    assert_eq!(snap.raw_bytes(), &bytes[..]);
}

#[test]
fn newer_versions_are_rejected_loudly() {
    let (graph, model) = parts();
    let mut bytes = to_bytes(&graph, &model);
    for future in [SCHEMA_VERSION + 1, SCHEMA_VERSION + 100, u32::MAX] {
        bytes[8..12].copy_from_slice(&future.to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(ServeError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, future);
                assert_eq!(supported, SCHEMA_VERSION);
            }
            Err(e) => panic!("version {future} must be UnsupportedVersion, got {e:?}"),
            Ok(_) => panic!("version {future} must be rejected, but it loaded"),
        }
    }
    // Version 0 never existed.
    bytes[8..12].copy_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(ServeError::UnsupportedVersion { found: 0, .. })
    ));
}

#[test]
fn header_version_and_payload_layout_must_agree() {
    let (graph, model) = parts();
    // v2 header over v1 payload bytes: the arena decode must refuse.
    let mut mislabeled = v1_snapshot_bytes(&graph, &model);
    mislabeled[8..12].copy_from_slice(&SCHEMA_VERSION.to_le_bytes());
    assert!(
        Snapshot::from_bytes(&mislabeled).is_err(),
        "v1 payload under a v{SCHEMA_VERSION} header must not decode"
    );
    // v1 header over v2 payload bytes: the per-name decode must refuse.
    let mut mislabeled = to_bytes(&graph, &model);
    mislabeled[8..12].copy_from_slice(&1u32.to_le_bytes());
    assert!(
        Snapshot::from_bytes(&mislabeled).is_err(),
        "v{SCHEMA_VERSION} payload under a v1 header must not decode"
    );
}
