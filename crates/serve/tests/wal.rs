//! Crash-recovery property tests for the commit WAL.
//!
//! The contract under test: **ack ⇒ replayable**. For every fault-injection
//! site the log exposes ([`genclus_serve::wal::KILL_SITES`]), and every
//! occurrence of that site along a scripted serving session, killing the
//! process there and recovering from disk — snapshot + WAL — then
//! re-driving the not-yet-acknowledged part of the script must end in a
//! state **byte-identical** to the uninterrupted run: the served snapshot's
//! raw bytes plus the staged window (names, types, links, observations, and
//! fold-in `Θ` rows as bit patterns). A torn final record is truncated and
//! reported, never fatal; a log paired with the wrong snapshot is fatal.

use genclus_core::{GenClus, GenClusConfig};
use genclus_hin::{HinBuilder, Schema};
use genclus_serve::wal::{Wal, FRAME_LEN, KILL_SITES, WAL_HEADER_LEN};
use genclus_serve::{
    Json, RefreshPolicy, RefreshableEngine, ServeError, Snapshot, WalRecoveryReport,
};
use genclus_stats::bytesio::fnv1a64;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The refresh.rs fixture: two planted sensor clusters, readings on the
/// anchors only. Deterministic (seeded, single-threaded EM).
fn snapshot_bytes() -> Vec<u8> {
    let mut s = Schema::new();
    let sensor = s.add_object_type("sensor");
    let nn = s.add_relation("nn", sensor, sensor);
    let reading = s.add_numerical_attribute("reading");
    let mut b = HinBuilder::new(s);
    let vs: Vec<_> = (0..6)
        .map(|i| b.add_object(sensor, format!("s{i}")))
        .collect();
    for group in [[0usize, 1, 2], [3, 4, 5]] {
        for &i in &group {
            for &j in &group {
                if i != j {
                    b.add_link(vs[i], vs[j], nn, 1.0).unwrap();
                }
            }
        }
    }
    for x in [-5.0, -5.1, -4.9] {
        b.add_numeric(vs[0], reading, x).unwrap();
    }
    for x in [5.0, 5.1, 4.9] {
        b.add_numeric(vs[3], reading, x).unwrap();
    }
    let graph = b.build().unwrap();
    let cfg = GenClusConfig::new(2, vec![reading]).with_seed(7);
    let fit = GenClus::new(cfg).unwrap().fit(&graph).unwrap();
    genclus_serve::snapshot::to_bytes(&graph, &fit.model)
}

/// One isolated serving deployment: its own directory holding the snapshot
/// file (the boot snapshot and `persist_path` point at the same file, as a
/// self-refreshing deployment would) and the commit log.
struct Deployment {
    dir: PathBuf,
    snap: PathBuf,
    wal: PathBuf,
}

impl Deployment {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("genclus-wal-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("model.gcsnap");
        std::fs::write(&snap, snapshot_bytes()).unwrap();
        Self {
            wal: dir.join("commits.gcwal"),
            dir,
            snap,
        }
    }

    fn policy(&self) -> RefreshPolicy {
        RefreshPolicy {
            persist_path: Some(self.snap.clone()),
            ..RefreshPolicy::default()
        }
    }

    /// Opens (or recovers) the engine exactly as the binary would.
    fn open(&self) -> Result<(RefreshableEngine, WalRecoveryReport), ServeError> {
        RefreshableEngine::with_wal(
            Snapshot::load(&self.snap).unwrap(),
            1,
            self.policy(),
            &self.wal,
        )
    }
}

impl Drop for Deployment {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// The scripted session: commits covering links to served objects,
/// staged→staged links, `in_links` from served and staged sources, numeric
/// observations (including a `-0.0` whose bit pattern must survive),
/// interleaved with persisted refreshes, ending with a non-empty window.
const SCRIPT: &[&str] = &[
    r#"{"op":"fold_in","links":[["nn","s3",1.0],["nn","s4",1.0]],"values":{"reading":[1.5]},"commit":"n0"}"#,
    r#"{"op":"fold_in","links":[["nn","n0",1.0]],"in_links":[["nn","s1",0.5]],"commit":"n1"}"#,
    r#"{"op":"fold_in","links":[["nn","s0",2.0]],"in_links":[["nn","n0",1.0]],"commit":"n2"}"#,
    r#"{"op":"refresh"}"#,
    r#"{"op":"fold_in","links":[["nn","n0",1.0]],"commit":"n3"}"#,
    r#"{"op":"fold_in","links":[["nn","n3",1.0]],"values":{"reading":[-0.0]},"commit":"n4"}"#,
    r#"{"op":"refresh"}"#,
    r#"{"op":"fold_in","links":[["nn","s2",1.0]],"in_links":[["nn","n4",2.0]],"commit":"n5"}"#,
    r#"{"op":"fold_in","links":[["nn","n5",1.0]],"commit":"n6"}"#,
];

/// Served snapshot bytes + staged-window bytes: the full observable state.
fn fingerprint(e: &RefreshableEngine) -> Vec<u8> {
    let mut fp = e.engine().snapshot().raw_bytes().to_vec();
    fp.extend(e.staged_state_bytes());
    fp
}

/// `unwrap_err` without requiring `Debug` on the success side.
fn expect_err<T>(result: Result<T, ServeError>) -> ServeError {
    match result {
        Ok(_) => panic!("expected a hard recovery error"),
        Err(e) => e,
    }
}

fn run_step(e: &mut RefreshableEngine, line: &str) -> Result<(), String> {
    let resp = e.handle_line(line);
    let v = Json::parse(&resp).unwrap();
    if v.get("ok") != Some(&Json::Bool(true)) {
        return Err(v.get("error").unwrap().as_str().unwrap().to_string());
    }
    // A refresh's truncation failure is non-fatal and reported out of band;
    // the kill harness must see it as this step's death.
    if let Some(err) = e.wal_error() {
        return Err(err.to_string());
    }
    Ok(())
}

fn reference_fingerprint() -> Vec<u8> {
    let d = Deployment::new("reference");
    let (mut e, report) = d.open().unwrap();
    assert_eq!(
        report,
        WalRecoveryReport {
            replayed: 0,
            skipped: 0,
            torn_bytes: 0,
            rewritten: false,
        }
    );
    for line in SCRIPT {
        run_step(&mut e, line).unwrap();
    }
    assert_eq!(e.pending_objects(), 2, "script ends with a staged window");
    assert_eq!(e.wal_records(), Some(2), "persisted refreshes truncate");
    fingerprint(&e)
}

/// Runs the script with a kill wired to the `occurrence`-th hit of `site`.
/// Returns `None` when the site never fired that often (the enumeration
/// for this site is exhausted); otherwise kills the engine at that point,
/// recovers from disk, re-drives the unacknowledged part of the script,
/// and returns the final fingerprint.
fn run_killed(site: &'static str, occurrence: usize, tag: &str) -> Option<Vec<u8>> {
    let d = Deployment::new(tag);
    let (mut e, _) = d.open().unwrap();
    let counter = Arc::new(AtomicUsize::new(0));
    let hits = counter.clone();
    e.set_wal_kill_hook(move |s| {
        s == site && hits.fetch_add(1, Ordering::SeqCst) + 1 == occurrence
    });

    let mut died_at: Option<(usize, bool)> = None;
    for (i, line) in SCRIPT.iter().enumerate() {
        match run_step(&mut e, line) {
            Ok(()) => {}
            Err(msg) => {
                assert!(
                    msg.contains("killed at"),
                    "step {i} failed for a non-injected reason: {msg}"
                );
                died_at = Some((i, line.contains(r#""op":"refresh""#)));
                break;
            }
        }
    }
    let (step, was_refresh) = died_at?;
    drop(e); // the crash

    let (mut e, _report) = d
        .open()
        .unwrap_or_else(|err| panic!("recovery after kill at {site}#{occurrence}: {err}"));
    // Client-retry semantics: a refresh step dies *after* the swap and
    // persist landed (truncation runs last), so the retry resumes at the
    // next step; a commit step retries the commit itself — and a commit
    // that was durable but never acked ("append:acked-never-sent")
    // surfaces as "already staged", which tells the client it survived.
    if !was_refresh {
        match run_step(&mut e, SCRIPT[step]) {
            Ok(()) => {}
            Err(msg) => assert!(
                msg.contains("already staged") || msg.contains("already exists"),
                "retry of step {step} after kill at {site}#{occurrence}: {msg}"
            ),
        }
    }
    for line in &SCRIPT[step + 1..] {
        run_step(&mut e, line)
            .unwrap_or_else(|msg| panic!("post-recovery step failed ({site}#{occurrence}): {msg}"));
    }
    Some(fingerprint(&e))
}

#[test]
fn crash_at_every_kill_point_recovers_byte_identically() {
    let reference = reference_fingerprint();
    let mut scenarios = 0usize;
    for site in KILL_SITES {
        let mut occurrence = 1usize;
        loop {
            let tag = format!("{}-{occurrence}", site.replace(':', "-"));
            match run_killed(site, occurrence, &tag) {
                Some(fp) => {
                    assert_eq!(
                        fp, reference,
                        "kill at {site} (occurrence {occurrence}) diverged after recovery"
                    );
                    scenarios += 1;
                    occurrence += 1;
                }
                None => break,
            }
        }
        assert!(
            occurrence > 1,
            "kill site {site} never fired — the matrix has a dead cell"
        );
    }
    // 4 append sites × 7 commits + 3 truncate sites × 2 refreshes.
    assert_eq!(scenarios, 4 * 7 + 3 * 2, "the full matrix ran");
}

// ---------------------------------------------------------------------------
// Torn-tail recovery: every byte offset of the final record
// ---------------------------------------------------------------------------

/// Walks the frame structure of a WAL file, returning each record's byte
/// range `[start, end)`.
fn frame_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    while pos < bytes.len() {
        let len = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap()) as usize;
        let end = pos + FRAME_LEN + len.next_multiple_of(8);
        out.push((pos, end));
        pos = end;
    }
    out
}

/// Rewrites the 2-byte name inside the first record's payload and fixes up
/// the frame checksum, keeping the frame structurally valid.
fn forge_first_record_name(log: &mut [u8], from: &[u8; 2], to: &[u8; 2]) {
    let (start, _) = frame_ranges(log)[0];
    let len = u64::from_le_bytes(log[start..start + 8].try_into().unwrap()) as usize;
    let payload = start + FRAME_LEN..start + FRAME_LEN + len;
    let at = log[payload.clone()]
        .windows(2)
        .position(|w| w == from)
        .expect("name bytes present")
        + payload.start;
    log[at..at + 2].copy_from_slice(to);
    let checksum = fnv1a64(&log[payload.clone()]);
    log[start + 8..start + 16].copy_from_slice(&checksum.to_le_bytes());
}

#[test]
fn torn_final_record_is_truncated_at_every_byte_offset_never_fatal() {
    let d = Deployment::new("torn");
    let (mut e, _) = d.open().unwrap();
    for line in &SCRIPT[..3] {
        run_step(&mut e, line).unwrap();
    }
    drop(e);
    let full = std::fs::read(&d.wal).unwrap();
    let frames = frame_ranges(&full);
    assert_eq!(frames.len(), 3);
    let (last_start, last_end) = *frames.last().unwrap();
    assert_eq!(last_end, full.len());

    let snap = Snapshot::load(&d.snap).unwrap();
    for cut in last_start..last_end {
        let torn_path = d.dir.join("torn.gcwal");
        std::fs::write(&torn_path, &full[..cut]).unwrap();
        let (wal, replay) = Wal::open_or_create(&torn_path, snap.header().checksum, snap.graph())
            .unwrap_or_else(|err| panic!("cut at byte {cut} was fatal: {err}"));
        assert_eq!(
            replay.records.len(),
            2,
            "cut at {cut}: the longest valid prefix is recovered, not discarded"
        );
        assert_eq!(replay.records[0].name, "n0");
        assert_eq!(replay.records[1].name, "n1");
        assert_eq!(replay.torn_bytes, cut - last_start, "cut at {cut}");
        assert_eq!(wal.n_records(), 2);
        // The torn tail is physically gone: the file ends at the valid
        // prefix, so later appends extend good bytes.
        assert_eq!(
            std::fs::metadata(&torn_path).unwrap().len(),
            last_start as u64,
            "cut at {cut}"
        );
    }
    // The untouched file replays all three records cleanly.
    let (_, replay) = Wal::open_or_create(&d.wal, snap.header().checksum, snap.graph()).unwrap();
    assert_eq!(replay.records.len(), 3);
    assert_eq!((replay.skipped, replay.torn_bytes), (0, 0));
}

#[test]
fn mid_log_corruption_truncates_from_the_corrupt_record() {
    let d = Deployment::new("midcorrupt");
    let (mut e, _) = d.open().unwrap();
    for line in &SCRIPT[..3] {
        run_step(&mut e, line).unwrap();
    }
    drop(e);
    let mut bytes = std::fs::read(&d.wal).unwrap();
    let (second_start, _) = frame_ranges(&bytes)[1];
    // Flip one payload byte of the middle record: its checksum fails, and
    // everything from it on is untrusted (the fsync discipline only
    // guarantees prefix integrity).
    bytes[second_start + FRAME_LEN] ^= 0xff;
    std::fs::write(&d.wal, &bytes).unwrap();
    let snap = Snapshot::load(&d.snap).unwrap();
    let (_, replay) = Wal::open_or_create(&d.wal, snap.header().checksum, snap.graph()).unwrap();
    assert_eq!(replay.records.len(), 1);
    assert_eq!(replay.records[0].name, "n0");
    assert_eq!(replay.torn_bytes, bytes.len() - second_start);
}

#[test]
fn partial_header_recovers_as_a_fresh_log() {
    let d = Deployment::new("partialheader");
    std::fs::write(&d.wal, [0u8; 17]).unwrap();
    let snap = Snapshot::load(&d.snap).unwrap();
    let (wal, replay) = Wal::open_or_create(&d.wal, snap.header().checksum, snap.graph()).unwrap();
    assert_eq!(replay.torn_bytes, 17);
    assert_eq!(wal.n_records(), 0);
    assert_eq!(
        std::fs::metadata(&d.wal).unwrap().len(),
        WAL_HEADER_LEN as u64
    );
}

// ---------------------------------------------------------------------------
// Hard errors: a wrong pairing is fatal, not silently "recovered"
// ---------------------------------------------------------------------------

#[test]
fn wrong_snapshot_and_log_ahead_are_hard_errors() {
    let d = Deployment::new("wrongsnap");
    let (mut e, _) = d.open().unwrap();
    run_step(&mut e, SCRIPT[0]).unwrap();
    drop(e);
    let snap = Snapshot::load(&d.snap).unwrap();

    // Same object count, different checksum: a different snapshot.
    let err = expect_err(Wal::open_or_create(
        &d.wal,
        snap.header().checksum ^ 1,
        snap.graph(),
    ));
    assert!(err.to_string().contains("different snapshot"), "{err}");

    // A log whose base is *ahead* of the snapshot (stale snapshot file).
    let ahead = d.dir.join("ahead.gcwal");
    drop(Wal::create(&ahead, snap.header().checksum, 99).unwrap());
    let err = expect_err(Wal::open_or_create(
        &ahead,
        snap.header().checksum,
        snap.graph(),
    ));
    assert!(err.to_string().contains("wrong or stale"), "{err}");

    // Not a WAL at all (long enough to rule out a torn header).
    let junk = d.dir.join("junk.gcwal");
    std::fs::write(&junk, [b'x'; 64]).unwrap();
    let err = expect_err(Wal::open_or_create(
        &junk,
        snap.header().checksum,
        snap.graph(),
    ));
    assert!(err.to_string().contains("bad magic"), "{err}");
}

#[test]
fn recovery_skips_records_the_snapshot_already_absorbed() {
    // The crash window between a persisted refresh and its log truncation:
    // simulated by copying the log aside before a refresh and restoring it
    // afterwards — the snapshot then holds commits the log still carries.
    let d = Deployment::new("skipabsorbed");
    let (mut e, _) = d.open().unwrap();
    for line in &SCRIPT[..3] {
        run_step(&mut e, line).unwrap();
    }
    drop(e);
    let stale_log = std::fs::read(&d.wal).unwrap();

    let (mut e, report) = d.open().unwrap();
    assert_eq!(report.replayed, 3, "a clean log replays everything");
    run_step(&mut e, SCRIPT[3]).unwrap(); // refresh: persists + truncates
    assert_eq!(e.wal_records(), Some(0));
    drop(e);
    std::fs::write(&d.wal, &stale_log).unwrap(); // un-truncate: the "crash"

    let (e, report) = d.open().unwrap();
    assert_eq!(report.replayed, 0, "all three commits are already served");
    assert_eq!(report.skipped, 3);
    assert!(report.rewritten, "the log is rebased during recovery");
    assert_eq!(e.wal_records(), Some(0));
    assert_eq!(e.pending_objects(), 0);
    for name in ["n0", "n1", "n2"] {
        assert!(e.engine().graph().object_by_name(name).is_some(), "{name}");
    }
    drop(e);

    // A log from a different lineage whose ids overlap served objects must
    // NOT be skipped silently: the same bytes with one record's name
    // forged fail the name/id verification and die loudly.
    let mut forged = stale_log.clone();
    forge_first_record_name(&mut forged, b"n0", b"x0");
    std::fs::write(&d.wal, &forged).unwrap();
    let err = expect_err(d.open());
    assert!(err.to_string().contains("lineage"), "{err}");
}

// ---------------------------------------------------------------------------
// Background mode: segments truncate at the swap, merge on failure
// ---------------------------------------------------------------------------

/// A gate the background re-fit blocks on, so the test controls when the
/// swap happens (same idiom as the refresh.rs background tests).
fn gated(e: &mut RefreshableEngine) -> Arc<(std::sync::Mutex<bool>, std::sync::Condvar)> {
    let gate = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
    let in_job = gate.clone();
    e.set_background_refit_hook(move || {
        let (lock, cvar) = &*in_job;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cvar.wait(open).unwrap();
        }
    });
    gate
}

fn open_gate(gate: &(std::sync::Mutex<bool>, std::sync::Condvar)) {
    let (lock, cvar) = gate;
    *lock.lock().unwrap() = true;
    cvar.notify_all();
}

#[test]
fn background_swap_truncates_only_the_landed_windows_segment() {
    let d = Deployment::new("bgswap");
    let policy = RefreshPolicy {
        background: true,
        ..d.policy()
    };
    let (mut e, _) =
        RefreshableEngine::with_wal(Snapshot::load(&d.snap).unwrap(), 1, policy.clone(), &d.wal)
            .unwrap();
    let gate = gated(&mut e);
    run_step(&mut e, SCRIPT[0]).unwrap(); // n0
    let resp = e.handle_line(r#"{"op":"refresh"}"#);
    assert!(resp.contains(r#""started":true"#), "{resp}");
    // A commit arriving mid-re-fit opens the second log segment.
    run_step(
        &mut e,
        r#"{"op":"fold_in","links":[["nn","n0",1.0]],"commit":"mid"}"#,
    )
    .unwrap();
    assert_eq!(e.wal_records(), Some(2));
    open_gate(&gate);
    e.finish();
    assert_eq!(e.wal_error(), None);
    // The landed window's segment is gone; the next window's survives.
    assert_eq!(e.wal_records(), Some(1));
    assert_eq!(e.pending_objects(), 1);
    drop(e);

    // Recovery agrees: n0 is served, mid is staged.
    let (e, report) =
        RefreshableEngine::with_wal(Snapshot::load(&d.snap).unwrap(), 1, policy, &d.wal).unwrap();
    assert_eq!((report.replayed, report.skipped), (1, 0));
    assert!(e.engine().graph().object_by_name("n0").is_some());
    assert_eq!(e.pending_objects(), 1);
}

#[test]
fn failed_background_refit_keeps_both_segments_and_recovery_replays_all() {
    let d = Deployment::new("bgfail");
    let policy = RefreshPolicy {
        background: true,
        // Unwritable persist target (parent of a file): the re-fit itself
        // succeeds, persistence fails → the job errors, nothing truncates.
        persist_path: Some(PathBuf::from("/dev/null/refreshed.gcsnap")),
        ..RefreshPolicy::default()
    };
    let (mut e, _) =
        RefreshableEngine::with_wal(Snapshot::load(&d.snap).unwrap(), 1, policy, &d.wal).unwrap();
    let gate = gated(&mut e);
    run_step(&mut e, SCRIPT[0]).unwrap();
    let resp = e.handle_line(r#"{"op":"refresh"}"#);
    assert!(resp.contains(r#""started":true"#), "{resp}");
    run_step(
        &mut e,
        r#"{"op":"fold_in","links":[["nn","n0",1.0]],"commit":"mid"}"#,
    )
    .unwrap();
    open_gate(&gate);
    e.finish();
    assert!(matches!(e.last_refresh(), Some(Err(_))));
    // Both windows merged back, both records still logged.
    assert_eq!(e.pending_objects(), 2);
    assert_eq!(e.wal_records(), Some(2));
    let merged = e.staged_state_bytes();
    drop(e);

    // Recovery from the (never-refreshed) boot snapshot replays both
    // commits into one window, byte-identical to the merged state.
    let (e, report) = d.open().unwrap();
    assert_eq!(report.replayed, 2);
    assert_eq!(e.staged_state_bytes(), merged);
}

// ---------------------------------------------------------------------------
// Durability ordering
// ---------------------------------------------------------------------------

#[test]
fn failed_append_rejects_the_commit_with_nothing_staged() {
    let d = Deployment::new("appendfail");
    let (mut e, _) = d.open().unwrap();
    e.set_wal_kill_hook(|site| site == "append:before-write");
    let resp = e.handle_line(SCRIPT[0]);
    assert!(resp.contains(r#""ok":false"#), "{resp}");
    assert!(resp.contains("killed at"), "{resp}");
    assert_eq!(e.pending_objects(), 0, "nothing staged without a log entry");
    assert_eq!(e.pending_links(), 0);
    assert_eq!(e.wal_records(), Some(0));
}

#[test]
fn without_persist_path_the_log_is_never_truncated_and_covers_everything() {
    let d = Deployment::new("nopersist");
    let policy = RefreshPolicy::default(); // no persist_path
    let (mut e, _) =
        RefreshableEngine::with_wal(Snapshot::load(&d.snap).unwrap(), 1, policy.clone(), &d.wal)
            .unwrap();
    for line in &SCRIPT[..4] {
        run_step(&mut e, line).unwrap(); // 3 commits + an in-memory refresh
    }
    assert_eq!(e.refreshes(), 1);
    assert_eq!(
        e.wal_records(),
        Some(3),
        "an unpersisted refresh must not drop the only durable record of its commits"
    );
    // Commits after the in-memory refresh keep extending the same log.
    run_step(&mut e, SCRIPT[4]).unwrap();
    assert_eq!(e.wal_records(), Some(4));
    drop(e);

    // Recovery reloads the *boot* snapshot (nothing was ever persisted)
    // and replays all four commits into one window.
    let (mut e, report) =
        RefreshableEngine::with_wal(Snapshot::load(&d.snap).unwrap(), 1, policy, &d.wal).unwrap();
    assert_eq!(report.replayed, 4);
    assert_eq!(e.pending_objects(), 4);
    for name in ["n0", "n1", "n2", "n3"] {
        let resp = e.handle_line(&format!(
            r#"{{"op":"fold_in","links":[["nn","s3",1.0]],"commit":"{name}"}}"#
        ));
        assert!(resp.contains("already staged"), "{name}: {resp}");
    }
}
