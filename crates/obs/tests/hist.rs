//! Exactness of histogram quantiles against sort-based quantiles.
//!
//! The bench harness (`serve_perf`, `refresh_perf`) used to sort its
//! latency vectors and index into them; it now records into the shared
//! [`Histogram`]. These tests pin the contract that made the swap safe:
//! for any sample set, a histogram quantile is within `1/32` relative
//! error of the nearest-rank quantile of the sorted samples (and exact
//! below 32).

use genclus_obs::Histogram;
use rand::{Rng, SeedableRng};

/// Nearest-rank quantile on a sorted slice — the definition the histogram
/// implements, and the one the bench harness's ad-hoc math approximated.
fn sorted_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    if q >= 1.0 {
        return *sorted.last().unwrap();
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn assert_close(h: &Histogram, sorted: &[u64], q: f64, label: &str) {
    let got = h.quantile(q);
    let want = sorted_quantile(sorted, q);
    let tol = (want as f64) / 32.0 + 0.5;
    assert!(
        (got as f64 - want as f64).abs() <= tol,
        "{label} q={q}: histogram {got} vs sorted {want} (tol {tol:.2})"
    );
}

fn check_distribution(label: &str, samples: Vec<u64>) {
    let h = Histogram::new();
    for &v in &samples {
        h.record(v);
    }
    let mut sorted = samples;
    sorted.sort_unstable();
    for &q in &[0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        assert_close(&h, &sorted, q, label);
    }
    assert_eq!(
        h.max(),
        *sorted.last().unwrap(),
        "{label}: max must be exact"
    );
    assert_eq!(h.count(), sorted.len() as u64, "{label}: count");
}

#[test]
fn uniform_latencies_match_sorted_quantiles() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    check_distribution(
        "uniform",
        (0..20_000)
            .map(|_| rng.gen_range(0u64..5_000_000))
            .collect(),
    );
}

#[test]
fn heavy_tailed_latencies_match_sorted_quantiles() {
    // Serving latency shape: a tight body with a long fsync-ish tail.
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let samples = (0..20_000)
        .map(|_| {
            let body = rng.gen_range(8_000u64..40_000);
            if rng.gen_range(0u32..100) < 3 {
                body * rng.gen_range(50u64..400)
            } else {
                body
            }
        })
        .collect();
    check_distribution("heavy-tail", samples);
}

#[test]
fn tiny_sample_sets_match_sorted_quantiles() {
    check_distribution("single", vec![12_345]);
    check_distribution("pair", vec![5, 1_000_000]);
    check_distribution("small", vec![3, 3, 3, 9, 27, 81, 243]);
}

#[test]
fn constant_distribution_is_tight() {
    let h = Histogram::new();
    for _ in 0..1000 {
        h.record(100_000);
    }
    for &q in &[0.5, 0.9, 0.99] {
        let got = h.quantile(q) as f64;
        assert!((got - 100_000.0).abs() <= 100_000.0 / 32.0);
    }
    assert_eq!(h.quantile(1.0), 100_000);
}
