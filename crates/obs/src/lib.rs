//! # genclus-obs — hand-rolled in-process observability
//!
//! The serving stack (PRs 4–6: snapshots, fold-in, background refreshes,
//! commit WAL) needs live visibility — query latency, fsync cost, refresh
//! stalls, EM convergence — without pulling in a metrics registry the
//! offline build environment can't fetch. This crate is the self-contained
//! substrate:
//!
//! - [`Counter`] / [`Gauge`] / [`FloatGauge`] — relaxed-atomic scalars.
//! - [`Histogram`] — log-bucketed latency histogram (p50/p90/p99/max,
//!   bounded relative error, mergeable across threads, lock-free record).
//! - [`TraceSink`] / [`TraceHandle`] — the span/event hook the algorithm
//!   layers emit through without knowing who is listening.
//! - [`log`] — leveled stderr diagnostics behind one `--quiet`-able gate.
//!
//! Aggregation policy (which ops get histograms, what the JSON looks like)
//! lives with the consumers — `genclus-serve` for the `metrics` op and
//! `genclus-bench` for perf reports. This crate only provides mechanisms,
//! and depends on nothing.

pub mod counter;
pub mod hist;
pub mod log;
pub mod trace;

pub use counter::{Counter, FloatGauge, Gauge};
pub use hist::{Histogram, HistogramSnapshot};
pub use trace::{MemorySink, TraceEvent, TraceHandle, TraceSink};
