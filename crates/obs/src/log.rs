//! Leveled stderr logging for operator-facing diagnostics.
//!
//! One process-global level and tag, so a binary's scattered `eprintln!`
//! diagnostics (startup geometry, WAL recovery summaries, background-refit
//! warnings) become uniformly prefixed and suppressible with a `--quiet`
//! flag. This is intentionally not a `log`-crate facade: the container is
//! offline, the call sites number in the dozens, and everything goes to
//! stderr so the JSON-lines protocol on stdout stays clean.
//!
//! Rendered formats, matching the binary's historical style:
//!
//! ```text
//! <tag>: <message>            (info)
//! <tag>: warning: <message>
//! <tag>: error: <message>
//! <tag>: debug: <message>
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Severity, ordered so that lower values are more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static TAG: OnceLock<String> = OnceLock::new();

/// Set the process tag and threshold. The tag sticks on first call
/// (later calls keep the original tag but still apply the level).
pub fn init(tag: &str, level: Level) {
    let _ = TAG.set(tag.to_string());
    set_level(level);
}

pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether a message at `l` would currently be emitted.
pub fn enabled(l: Level) -> bool {
    (l as u8) <= LEVEL.load(Ordering::Relaxed)
}

fn tag() -> &'static str {
    TAG.get().map(String::as_str).unwrap_or("genclus")
}

fn emit(l: Level, msg: &str) {
    if !enabled(l) {
        return;
    }
    match l {
        Level::Error => eprintln!("{}: error: {msg}", tag()),
        Level::Warn => eprintln!("{}: warning: {msg}", tag()),
        Level::Info => eprintln!("{}: {msg}", tag()),
        Level::Debug => eprintln!("{}: debug: {msg}", tag()),
    }
}

pub fn error(msg: impl AsRef<str>) {
    emit(Level::Error, msg.as_ref());
}

pub fn warn(msg: impl AsRef<str>) {
    emit(Level::Warn, msg.as_ref());
}

pub fn info(msg: impl AsRef<str>) {
    emit(Level::Info, msg.as_ref());
}

pub fn debug(msg: impl AsRef<str>) {
    emit(Level::Debug, msg.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_gate_correctly() {
        // Process-global state: exercise the full lattice in one test to
        // avoid cross-test interference.
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        assert_eq!(level(), Level::Debug);
        set_level(Level::Info);
        assert_eq!(level(), Level::Info);
    }
}
