//! Log-bucketed latency histogram with lock-free recording.
//!
//! The design goal is a recording path cheap enough to leave always-on in
//! the serving hot loop: one bucket-index computation (a couple of shifts)
//! plus three relaxed atomic adds — no locks, no allocation, no branches
//! that depend on the distribution. Quantile queries walk the bucket array
//! and are paid only by whoever asks for them (`{"op":"metrics"}`, bench
//! reports), never by the recorder.
//!
//! # Bucket layout
//!
//! Values are unsigned integers (the serving layer records nanoseconds).
//! The first 32 buckets are exact (width 1, values `0..32`). Above that,
//! each power-of-two octave `[2^e, 2^(e+1))` is split into 32 linear
//! sub-buckets, so the bucket width is always at most `1/32` of the bucket
//! lower bound. Quantiles report the bucket *midpoint*, which bounds the
//! relative error of any reported quantile by `1/64` (< 1.6%) — tight
//! enough to replace sort-based percentile math in the bench harness (see
//! the exactness tests against sorted quantiles in `tests/hist.rs`).
//!
//! Histograms with identical layout (all of them — the layout is fixed)
//! merge by bucket-wise addition, so per-thread histograms can be combined
//! without losing quantile fidelity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Exact linear region: values below `LINEAR` get width-1 buckets.
const LINEAR: u64 = 32;
/// log2 of `LINEAR`; also the number of sub-buckets per octave.
const SUB_BITS: u32 = 5;
/// Octaves `2^5 .. 2^63`, 32 sub-buckets each, after the linear region.
const N_BUCKETS: usize = LINEAR as usize + (64 - SUB_BITS as usize) * (1 << SUB_BITS);

/// Map a value to its bucket index. Total order preserving.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let sub = ((v >> (e - SUB_BITS)) & (LINEAR - 1)) as usize;
        LINEAR as usize + ((e - SUB_BITS) as usize) * (1 << SUB_BITS) + sub
    }
}

/// The representative (midpoint) value reported for a bucket.
#[inline]
fn bucket_value(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < LINEAR {
        idx
    } else {
        let g = (idx - LINEAR) >> SUB_BITS;
        let sub = (idx - LINEAR) & (LINEAR - 1);
        let lo = (LINEAR + sub) << g;
        let width = 1u64 << g;
        lo + width / 2
    }
}

/// A fixed-layout, mergeable, lock-free histogram of `u64` samples.
///
/// Thread-safe through `&self`; see the module docs for the bucket scheme
/// and error bound.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Fold another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Nearest-rank quantile (`0.0 ..= 1.0`) over the recorded samples,
    /// reported as the owning bucket's midpoint. `q >= 1.0` returns the
    /// exact maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Copy the current state into an immutable snapshot so a multi-field
    /// report (p50/p90/p99/max) reads one consistent view.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] with the same quantile API.
#[derive(Clone)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// See [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Never report past the true maximum (the top bucket's
                // midpoint can overshoot it).
                return bucket_value(idx).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = (0..2048).collect();
        for e in 11..64u32 {
            let base = 1u64 << e;
            probes.extend([base - 1, base, base + 1, base + (base >> 1)]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut prev = 0usize;
        for &v in &probes {
            let idx = bucket_index(v);
            assert!(idx < N_BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= prev, "index not monotone at {v}");
            prev = idx;
        }
    }

    #[test]
    fn bucket_value_error_is_bounded() {
        for &v in &[0u64, 1, 31, 32, 63, 64, 100, 1_000, 123_456, u64::MAX / 2] {
            let rep = bucket_value(bucket_index(v));
            let err = rep.abs_diff(v) as f64;
            assert!(
                err <= (v as f64) / 64.0 + 0.5,
                "value {v} represented as {rep} (err {err})"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().mean(), 0.0);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for i in 0..1000u64 {
            let v = i * i % 100_000;
            if i % 2 == 0 { &a } else { &b }.record(v);
            all.record(v);
        }
        a.merge(&b);
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
