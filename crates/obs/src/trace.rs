//! A minimal span/event trace hook.
//!
//! The algorithm layers (EM, refresh) don't know where their telemetry
//! should go — a serving process aggregates it into metrics, a bench run
//! might buffer it, a test inspects it. [`TraceSink`] is the one-method
//! boundary: a named event with numeric fields, cheap enough to call once
//! per EM outer iteration or refresh phase. Completed spans are events
//! whose fields carry the duration — there is deliberately no open-span
//! state to manage across threads.
//!
//! [`TraceHandle`] is the optional, cloneable carrier embedded in
//! configuration structs. It preserves the derives those structs already
//! have: `Clone` shares the sink, `Debug` shows only presence, and
//! `PartialEq` compares identity (two configs are equal when they point at
//! the same sink, or both have none).

use std::fmt;
use std::sync::{Arc, Mutex};

/// Receiver for trace events. Implementations must be cheap and
/// non-blocking; they are called from fitting and serving loops.
pub trait TraceSink: Send + Sync {
    /// A point event: a static name plus numeric fields. Span-shaped
    /// events carry their duration as a field (e.g. `("seconds", 0.012)`).
    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]);
}

/// An optional shared [`TraceSink`], embeddable in `PartialEq` configs.
#[derive(Clone, Default)]
pub struct TraceHandle(Option<Arc<dyn TraceSink>>);

impl TraceHandle {
    /// No sink installed; every [`event`](Self::event) is a no-op.
    pub fn none() -> Self {
        TraceHandle(None)
    }

    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        TraceHandle(Some(sink))
    }

    /// Whether a sink is installed. Callers use this to skip work that
    /// only exists to feed tracing (e.g. cloning Θ to measure movement).
    #[inline]
    pub fn is_set(&self) -> bool {
        self.0.is_some()
    }

    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        if let Some(sink) = &self.0 {
            sink.event(name, fields);
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() {
            "TraceHandle(set)"
        } else {
            "TraceHandle(none)"
        })
    }
}

impl PartialEq for TraceHandle {
    fn eq(&self, other: &Self) -> bool {
        match (&self.0, &other.0) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// One recorded event, as captured by [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: &'static str,
    pub fields: Vec<(&'static str, f64)>,
}

impl TraceEvent {
    /// Value of a field by name, if present.
    pub fn field(&self, name: &str) -> Option<f64> {
        self.fields
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }
}

/// A sink that buffers events in memory — for tests and offline analysis.
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn event(&self, name: &'static str, fields: &[(&'static str, f64)]) {
        self.events.lock().unwrap().push(TraceEvent {
            name,
            fields: fields.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_semantics() {
        let sink = Arc::new(MemorySink::new());
        let set = TraceHandle::new(sink.clone());
        let none = TraceHandle::none();
        assert!(set.is_set() && !none.is_set());
        assert_eq!(none, TraceHandle::default());
        assert_eq!(set, set.clone());
        assert_ne!(set, none);
        assert_ne!(set, TraceHandle::new(Arc::new(MemorySink::new())));
        assert_eq!(format!("{none:?}"), "TraceHandle(none)");
        assert_eq!(format!("{set:?}"), "TraceHandle(set)");

        none.event("dropped", &[]);
        set.event("kept", &[("x", 1.0)]);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "kept");
        assert_eq!(events[0].field("x"), Some(1.0));
        assert_eq!(events[0].field("missing"), None);
    }
}
