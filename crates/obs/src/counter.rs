//! Monotone counters and last-value gauges over relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for quantities that go up and down (pending window
/// sizes, WAL record counts, in-flight flags).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for floating-point observations (objective values,
/// Θ movement) stored as raw bits.
#[derive(Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    pub fn new() -> Self {
        FloatGauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_last_value() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        let f = FloatGauge::new();
        f.set(-1.25);
        assert_eq!(f.get(), -1.25);
        assert_eq!(FloatGauge::new().get(), 0.0);
    }
}
