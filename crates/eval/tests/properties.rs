//! Property-based tests for the evaluation metrics.

use genclus_eval::prelude::*;
use genclus_hin::ObjectId;
use proptest::prelude::*;

proptest! {
    /// NMI is bounded in [0, 1], symmetric, and 1 on self-comparison.
    #[test]
    fn nmi_bounds_and_symmetry(
        pairs in proptest::collection::vec((0usize..5, 0usize..5), 1..60),
    ) {
        let (a, b): (Vec<usize>, Vec<usize>) = pairs.into_iter().unzip();
        let v = nmi(&a, &b);
        prop_assert!((0.0..=1.0).contains(&v), "NMI out of range: {v}");
        prop_assert!((v - nmi(&b, &a)).abs() < 1e-12);
        prop_assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// NMI is invariant under relabeling of either partition.
    #[test]
    fn nmi_relabel_invariance(
        labels in proptest::collection::vec((0usize..4, 0usize..4), 2..40),
    ) {
        let (a, b): (Vec<usize>, Vec<usize>) = labels.into_iter().unzip();
        // Apply the permutation k → 3 − k to a.
        let a_perm: Vec<usize> = a.iter().map(|&x| 3 - x).collect();
        prop_assert!((nmi(&a, &b) - nmi(&a_perm, &b)).abs() < 1e-9);
    }

    /// AP is within [0, 1]; 1 exactly when all relevant items are ranked
    /// first.
    #[test]
    fn ap_bounds(
        n in 1usize..30,
        n_rel in 1usize..10,
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        let n_rel = n_rel.min(n);
        let mut rng = genclus_stats::seeded_rng(seed);
        let mut ranked: Vec<ObjectId> = (0..n as u32).map(ObjectId).collect();
        ranked.shuffle(&mut rng);
        let relevant: Vec<ObjectId> = ranked[..n_rel].to_vec(); // relevant = top-ranked
        let ap = average_precision(&ranked, &relevant);
        prop_assert!((ap - 1.0).abs() < 1e-12, "front-loaded relevant must give AP 1");

        // Arbitrary relevant subset stays within bounds.
        let mut all: Vec<ObjectId> = (0..n as u32).map(ObjectId).collect();
        all.shuffle(&mut rng);
        let arb = &all[..n_rel];
        let ap = average_precision(&ranked, arb);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ap));
    }

    /// Moving a relevant item earlier never decreases AP.
    #[test]
    fn ap_monotone_in_rank(n in 4usize..20, pos in 1usize..19) {
        let pos = pos.min(n - 1);
        let ranked: Vec<ObjectId> = (0..n as u32).map(ObjectId).collect();
        let relevant = [ObjectId(pos as u32)];
        let ap_here = average_precision(&ranked, &relevant);
        let better = [ObjectId(pos as u32 - 1)];
        let ap_better = average_precision(&ranked, &better);
        prop_assert!(ap_better >= ap_here);
    }
}
