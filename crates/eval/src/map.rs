//! Mean Average Precision for link prediction (§5.2.2, Tables 2–4).
//!
//! For a relation `⟨A, B⟩`, every A-object with at least one link becomes a
//! query: all B-objects are ranked by a caller-supplied score (membership
//! similarity in the paper), the linked B-objects are the relevant set, and
//! the ranking is scored by average precision. MAP is the mean over queries.

use genclus_hin::{HinGraph, ObjectId, RelationId};

/// Average precision of a ranked candidate list against a relevant set.
///
/// `AP = (Σ_{ranks r of relevant items} precision@r) / |relevant|`.
/// Returns 0 when `relevant` is empty.
pub fn average_precision(ranked: &[ObjectId], relevant: &[ObjectId]) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut rel_sorted: Vec<ObjectId> = relevant.to_vec();
    rel_sorted.sort_unstable();
    let mut hits = 0usize;
    let mut acc = 0.0;
    for (rank0, item) in ranked.iter().enumerate() {
        if rel_sorted.binary_search(item).is_ok() {
            hits += 1;
            acc += hits as f64 / (rank0 + 1) as f64;
        }
    }
    acc / rel_sorted.len() as f64
}

/// Mean of per-query average precisions; 0 for an empty query set.
pub fn mean_average_precision(aps: &[f64]) -> f64 {
    if aps.is_empty() {
        return 0.0;
    }
    aps.iter().sum::<f64>() / aps.len() as f64
}

/// Full link-prediction harness for one relation.
///
/// Every object with at least one out-link of `relation` queries a ranking
/// of *all* objects of the relation's target type, scored by
/// `score(query, candidate)` (higher = more similar). Returns the MAP. Ties
/// are broken by object id, making the result deterministic.
pub fn link_prediction_map(
    graph: &HinGraph,
    relation: RelationId,
    mut score: impl FnMut(ObjectId, ObjectId) -> f64,
) -> f64 {
    let target_type = graph.schema().relation(relation).target;
    let candidates = graph.objects_of_type(target_type);
    let mut aps = Vec::new();
    let mut relevant = Vec::new();
    let mut scored: Vec<(ObjectId, f64)> = Vec::with_capacity(candidates.len());
    for v in graph.objects() {
        relevant.clear();
        for link in graph.out_links(v) {
            if link.relation == relation {
                relevant.push(link.endpoint);
            }
        }
        if relevant.is_empty() {
            continue;
        }
        relevant.sort_unstable();
        relevant.dedup();
        scored.clear();
        scored.extend(candidates.iter().map(|&c| (c, score(v, c))));
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let ranked: Vec<ObjectId> = scored.iter().map(|&(c, _)| c).collect();
        aps.push(average_precision(&ranked, &relevant));
    }
    mean_average_precision(&aps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genclus_hin::{HinBuilder, Schema};

    fn ids(xs: &[u32]) -> Vec<ObjectId> {
        xs.iter().map(|&x| ObjectId(x)).collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let ranked = ids(&[3, 1, 4, 2]);
        let relevant = ids(&[3, 1]);
        assert!((average_precision(&ranked, &relevant) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_scores_low() {
        // Two relevant items at the bottom of four.
        let ranked = ids(&[4, 2, 3, 1]);
        let relevant = ids(&[3, 1]);
        // precision@3 = 1/3, precision@4 = 2/4 → AP = (1/3 + 1/2)/2 = 5/12.
        assert!((average_precision(&ranked, &relevant) - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_example() {
        // Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2 = 5/6.
        let ranked = ids(&[7, 8, 9]);
        let relevant = ids(&[7, 9]);
        assert!((average_precision(&ranked, &relevant) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(average_precision(&ids(&[1, 2]), &[]), 0.0);
        assert_eq!(mean_average_precision(&[]), 0.0);
        assert!((mean_average_precision(&[0.5, 1.0]) - 0.75).abs() < 1e-12);
    }

    /// Two authors, three conferences; a0 links c0, a1 links c2.
    fn toy_graph() -> (
        genclus_hin::HinGraph,
        Vec<ObjectId>,
        Vec<ObjectId>,
        RelationId,
    ) {
        let mut s = Schema::new();
        let ta = s.add_object_type("A");
        let tc = s.add_object_type("C");
        let ac = s.add_relation("ac", ta, tc);
        let mut b = HinBuilder::new(s);
        let a_ids: Vec<_> = (0..2).map(|i| b.add_object(ta, format!("a{i}"))).collect();
        let c_ids: Vec<_> = (0..3).map(|i| b.add_object(tc, format!("c{i}"))).collect();
        b.add_link(a_ids[0], c_ids[0], ac, 1.0).unwrap();
        b.add_link(a_ids[1], c_ids[2], ac, 2.0).unwrap();
        (b.build().unwrap(), a_ids, c_ids, ac)
    }

    #[test]
    fn harness_with_oracle_scores_one() {
        let (g, _a, c_ids, ac) = toy_graph();
        // Oracle: score 1 exactly for the true link, else 0.
        let map = link_prediction_map(&g, ac, |q, c| {
            let hit = g.out_links(q).any(|l| l.relation == ac && l.endpoint == c);
            if hit {
                1.0
            } else {
                0.0
            }
        });
        assert!((map - 1.0).abs() < 1e-12);
        let _ = c_ids;
    }

    #[test]
    fn harness_with_antioracle_is_worst_case() {
        let (g, _, _, ac) = toy_graph();
        let map = link_prediction_map(&g, ac, |q, c| {
            let hit = g.out_links(q).any(|l| l.relation == ac && l.endpoint == c);
            if hit {
                -1.0
            } else {
                0.0
            }
        });
        // Single relevant item forced to rank 3 of 3 → AP = 1/3 per query.
        assert!((map - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_scores_fall_back_to_id_order() {
        let (g, _, _, ac) = toy_graph();
        let map_const = link_prediction_map(&g, ac, |_, _| 0.5);
        // a0's relevant c0 ranks 1st (AP 1); a1's relevant c2 ranks 3rd (1/3).
        assert!((map_const - (1.0 + 1.0 / 3.0) / 2.0).abs() < 1e-12);
    }
}
