//! Evaluation metrics for the GenClus reproduction (§5.2 of the paper).
//!
//! * [`labels`] — partial ground-truth label sets (the DBLP four-area data
//!   labels only 20 conferences, 100 papers and 4 236 authors; evaluation is
//!   restricted to labeled objects);
//! * [`nmi`] — Normalized Mutual Information (Strehl–Ghosh, √-normalized),
//!   the clustering accuracy measure of Figs. 5–8 and 10;
//! * [`map`] — Mean Average Precision for the link-prediction accuracy test
//!   of Tables 2–4.

pub mod labels;
pub mod map;
pub mod nmi;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::labels::LabelSet;
    pub use crate::map::{average_precision, link_prediction_map, mean_average_precision};
    pub use crate::nmi::{nmi, nmi_against};
}

pub use prelude::*;
