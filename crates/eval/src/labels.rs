//! Partial ground-truth labels.
//!
//! Real evaluation networks label only a subset of objects (§5.1: "labels
//! were associated with a subset of the nodes"). [`LabelSet`] stores an
//! optional class per object and supports restriction to arbitrary object
//! subsets (e.g. one object type) for the per-type NMI columns of
//! Figs. 5–6.

use genclus_hin::ObjectId;

/// Ground-truth class labels for a (subset of a) network's objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSet {
    labels: Vec<Option<usize>>,
    n_classes: usize,
}

impl LabelSet {
    /// An unlabeled set over `n` objects.
    pub fn new(n: usize) -> Self {
        Self {
            labels: vec![None; n],
            n_classes: 0,
        }
    }

    /// Labels object `v` with `class`.
    pub fn set(&mut self, v: ObjectId, class: usize) {
        self.labels[v.index()] = Some(class);
        self.n_classes = self.n_classes.max(class + 1);
    }

    /// The label of `v`, if any.
    pub fn get(&self, v: ObjectId) -> Option<usize> {
        self.labels[v.index()]
    }

    /// Number of objects covered (labeled or not).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no object is labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.iter().all(Option::is_none)
    }

    /// Number of distinct classes (1 + max label seen).
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Number of labeled objects.
    pub fn n_labeled(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// All labeled object ids, ascending.
    pub fn labeled_objects(&self) -> Vec<ObjectId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|_| ObjectId::from_index(i)))
            .collect()
    }

    /// `(prediction, truth)` pairs over the labeled objects in `subset`
    /// (or over all labeled objects when `subset` is `None`), given a dense
    /// per-object prediction vector.
    pub fn paired_with<'a>(
        &'a self,
        predictions: &'a [usize],
        subset: Option<&'a [ObjectId]>,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        match subset {
            Some(objs) => {
                for &v in objs {
                    if let Some(t) = self.get(v) {
                        out.push((predictions[v.index()], t));
                    }
                }
            }
            None => {
                for (i, l) in self.labels.iter().enumerate() {
                    if let Some(t) = l {
                        out.push((predictions[i], *t));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_labeling_bookkeeping() {
        let mut ls = LabelSet::new(5);
        assert!(ls.is_empty());
        ls.set(ObjectId(1), 0);
        ls.set(ObjectId(3), 2);
        assert_eq!(ls.n_labeled(), 2);
        assert_eq!(ls.n_classes(), 3);
        assert_eq!(ls.get(ObjectId(0)), None);
        assert_eq!(ls.get(ObjectId(3)), Some(2));
        assert_eq!(ls.labeled_objects(), vec![ObjectId(1), ObjectId(3)]);
        assert!(!ls.is_empty());
    }

    #[test]
    fn pairing_respects_subset_and_labels() {
        let mut ls = LabelSet::new(4);
        ls.set(ObjectId(0), 1);
        ls.set(ObjectId(2), 0);
        let pred = vec![1, 0, 0, 1];
        assert_eq!(ls.paired_with(&pred, None), vec![(1, 1), (0, 0)]);
        let subset = [ObjectId(2), ObjectId(3)];
        assert_eq!(ls.paired_with(&pred, Some(&subset)), vec![(0, 0)]);
    }
}
