//! Normalized Mutual Information (Strehl & Ghosh 2003).
//!
//! `NMI(X, Y) = I(X; Y) / √(H(X) · H(Y))`, computed from the contingency
//! table of two hard partitions. The paper uses NMI against the ground-truth
//! labels as its clustering accuracy measure (§5.2); per-type columns
//! restrict the comparison to labeled objects of one object type.

use crate::labels::LabelSet;
use genclus_hin::ObjectId;

/// NMI between two aligned hard labelings.
///
/// Conventions for degenerate cases: two empty labelings → 0; if both
/// partitions are single-cluster (zero entropy) they are identical → 1; if
/// exactly one is single-cluster the mutual information is 0 → 0.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn nmi(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "labelings must be aligned");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let ka = a.iter().max().map_or(0, |&m| m + 1);
    let kb = b.iter().max().map_or(0, |&m| m + 1);
    let mut joint = vec![0.0f64; ka * kb];
    let mut ca = vec![0.0f64; ka];
    let mut cb = vec![0.0f64; kb];
    for (&x, &y) in a.iter().zip(b) {
        joint[x * kb + y] += 1.0;
        ca[x] += 1.0;
        cb[y] += 1.0;
    }
    let nf = n as f64;
    let h = |counts: &[f64]| -> f64 {
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / nf;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&ca);
    let hb = h(&cb);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    if ha == 0.0 || hb == 0.0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for x in 0..ka {
        if ca[x] == 0.0 {
            continue;
        }
        for y in 0..kb {
            let cxy = joint[x * kb + y];
            if cxy > 0.0 {
                let pxy = cxy / nf;
                mi += pxy * (pxy * nf * nf / (ca[x] * cb[y])).ln();
            }
        }
    }
    (mi / (ha * hb).sqrt()).clamp(0.0, 1.0)
}

/// NMI of a dense prediction vector against a partial ground truth,
/// restricted to the labeled objects of `subset` (or all labeled objects
/// when `subset` is `None`) — the per-type accuracy columns of Figs. 5–6.
pub fn nmi_against(predictions: &[usize], truth: &LabelSet, subset: Option<&[ObjectId]>) -> f64 {
    let pairs = truth.paired_with(predictions, subset);
    let (pred, gt): (Vec<usize>, Vec<usize>) = pairs.into_iter().unzip();
    nmi(&pred, &gt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_partitions_score_one() {
        let a = [0, 0, 1, 1, 2, 2];
        assert!((nmi(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn permuted_labels_still_score_one() {
        // NMI is invariant to label renaming.
        let a = [0, 0, 1, 1, 2, 2];
        let b = [2, 2, 0, 0, 1, 1];
        assert!((nmi(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_partitions_score_near_zero() {
        // A perfectly balanced independent pairing has zero MI.
        let a = [0, 0, 1, 1, 0, 0, 1, 1];
        let b = [0, 1, 0, 1, 0, 1, 0, 1];
        assert!(nmi(&a, &b) < 1e-12);
    }

    #[test]
    fn partial_overlap_is_strictly_between() {
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 1, 1, 1]; // one object moved
        let v = nmi(&a, &b);
        assert!(v > 0.1 && v < 0.99, "got {v}");
    }

    #[test]
    fn symmetric() {
        let a = [0, 1, 0, 2, 1, 0];
        let b = [1, 1, 0, 2, 2, 0];
        assert!((nmi(&a, &b) - nmi(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(nmi(&[], &[]), 0.0);
        // Both single-cluster: identical partitions.
        assert_eq!(nmi(&[0, 0, 0], &[0, 0, 0]), 1.0);
        // One single-cluster, the other not: no information shared.
        assert_eq!(nmi(&[0, 0, 0], &[0, 1, 2]), 0.0);
    }

    #[test]
    fn known_value_two_by_two() {
        // Contingency [[2,1],[1,2]]: H = ln 2 each, MI computable by hand.
        let a = [0, 0, 0, 1, 1, 1];
        let b = [0, 0, 1, 0, 1, 1];
        let n = 6.0f64;
        let mi = 2.0 * (2.0 / n) * ((2.0 / n) / (0.5 * 0.5)).ln()
            + 2.0 * (1.0 / n) * ((1.0 / n) / (0.5 * 0.5)).ln();
        let expected = mi / (2.0f64.ln());
        assert!((nmi(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn restriction_to_subset() {
        let mut truth = LabelSet::new(6);
        // Only objects 0..4 labeled; predictions are perfect there but
        // garbage on the unlabeled tail, which must not matter.
        for i in 0..4 {
            truth.set(ObjectId(i), (i % 2) as usize);
        }
        let predictions = vec![1, 0, 1, 0, 0, 0];
        assert!((nmi_against(&predictions, &truth, None) - 1.0).abs() < 1e-12);
        // Restricting to a subset with a single labeled object of one class.
        let subset = [ObjectId(0), ObjectId(4)];
        let v = nmi_against(&predictions, &truth, Some(&subset));
        assert_eq!(v, 1.0); // one object, both "partitions" single-cluster
    }
}
