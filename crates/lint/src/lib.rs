//! # genclus-lint — repo-invariant static analysis for the GenClus workspace
//!
//! A zero-dependency, hand-rolled static analyzer (no `syn`, no network —
//! the same vendored-stand-in constraint as the rest of the workspace).
//! It exists because the repo's correctness now rests on invariants the
//! compiler and clippy cannot see: allocation-free EM kernel regions,
//! `SAFETY:`-justified `unsafe`, fsync-before-ack durability confined to
//! blessed helpers, panic-free serve paths, a byte-stable metrics key
//! order, and bulk-only allocation in the million-object scale spans. This
//! crate turns those prose invariants into machine-checked ones, run in CI
//! as a hard gate:
//!
//! ```text
//! cargo run --release -p genclus-lint -- --workspace
//! ```
//!
//! ## Architecture
//!
//! * [`lexer`] — a Rust *surface* lexer. It separates code from comments
//!   and blanks string/char-literal contents while preserving layout, so
//!   rules match on code only and report real source columns. It tracks
//!   nested block comments, raw strings of any hash depth, char literals
//!   vs lifetimes, and `#[cfg(test)]` scopes by brace depth. It never
//!   panics on any input (fuzzed).
//! * [`rules`] — the rule engine: six rules plus the directive layer
//!   (waivers and regions). Diagnostics carry 1-based `line:col`.
//! * [`driver`] — workspace walking (skips `target/`, `vendor/`,
//!   `fixtures/`, dot-dirs), the embedded metrics-key manifest, and the
//!   `path:line:col: [rule] message` report format.
//!
//! ## Rules
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety` | every `unsafe` is preceded by a `// SAFETY:` comment (or rustdoc `# Safety` section) in the contiguous comment/attribute block above, or carries one on the same line |
//! | `hot-path-alloc` | no `Vec::new` / `vec![` / `Box::new` / `format!` / `.collect()` / `.to_vec()` / `String::from` inside a `hot-path` region (the EM kernel and fold-in assignment loops) |
//! | `durable-io-containment` | raw `fs::write` / `File::create` / `fs::rename` / `OpenOptions` only in the blessed `crates/serve/src/snapshot.rs` / `wal.rs`; everyone else routes through their fsync'd helpers |
//! | `no-panic-in-serve` | no `.unwrap()` / `.expect(` / `panic!` / `unreachable!` in non-test code under `crates/serve/src/` |
//! | `metrics-key-order` | the string-literal keys inside `metrics-schema` regions of `metrics.rs`, in render order, must equal the pinned manifest `src/metrics_keys.txt` |
//! | `no-per-object-alloc` | no `String::from` / `.to_string()` / `.to_owned()` / `format!` / `Vec::new` / `vec![` / `.entry(` / `.collect(` inside a `scale-hot` region (delta append and snapshot decode) — bulk whole-buffer `.to_vec()` stays legal |
//!
//! All rules skip `#[cfg(test)]` code; `unsafe-needs-safety` and
//! `durable-io-containment` also skip integration-test directories
//! (`…/tests/`).
//!
//! ## Directive syntax
//!
//! A directive is a comment whose trimmed text starts with `lint:` —
//! anywhere else the word appears (like this paragraph) is inert.
//!
//! * **Waiver** — `lint: allow(<rule>) -- <reason>`. Suppresses that rule
//!   on the directive's own line (trailing comment) or on the next code
//!   line (whole-line comment). The `-- <reason>` is mandatory, and a
//!   waiver that suppresses nothing is itself an error, so waivers cannot
//!   outlive the code they excuse.
//! * **Region** — `lint: region(<name>)` … `lint: end-region`. Names a
//!   span for region-scoped rules (`hot-path`, `metrics-schema`,
//!   `scale-hot`). Regions nest; unclosed regions and stray `end-region`s
//!   are errors.
//!
//! ## Adding a rule
//!
//! 1. Add the name to [`rules::RULE_NAMES`] (waiver validation) and a
//!    `fn rule_…(ctx, &mut out)` beside the existing six; wire it into
//!    [`rules::check_file`].
//! 2. Match against `LexLine::code` (already comment/literal-free) and
//!    report `(line, col)` from the match offset — columns are real
//!    because the lexer preserves layout.
//! 3. Add a seeded-violation fixture under `tests/fixtures/` asserting
//!    the exact `file:line` diagnostic, and a waiver-behavior case.
//! 4. Burn down or waive every finding the new rule produces on the
//!    workspace — CI runs the lint as a hard gate.
//!
//! ## Bumping the metrics manifest
//!
//! `metrics-key-order` failing after an intentional schema change is the
//! gate working. Edit `crates/lint/src/metrics_keys.txt` to the new
//! sequence (the diagnostic names the exact position), keep
//! `crates/serve/src/metrics.rs` documentation in sync, and bump
//! `schema_version` in `to_fields` if the change is wire-visible.

pub mod driver;
pub mod lexer;
pub mod rules;

pub use driver::{collect_rs_files, find_workspace_root, metrics_manifest, run, run_workspace};
pub use rules::{check_file, Diagnostic, RULE_NAMES};
