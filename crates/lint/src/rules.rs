//! The rule engine: six repo-specific rules plus the directive layer
//! (waivers and regions) they share.
//!
//! Everything here works on the [`crate::lexer`] output, so patterns never
//! match inside comments or string literals, columns are real source
//! columns, and `#[cfg(test)]` code is exempt where a rule says so.
//!
//! ## Directives
//!
//! A directive is a comment whose trimmed text starts with `lint:`.
//! Three forms exist:
//!
//! * `lint: allow(<rule>) -- <reason>` — waive the named rule on the next
//!   code line (or on the same line, for a trailing comment). The reason
//!   is mandatory; an unused waiver is itself an error.
//! * `lint: region(<name>)` — open a named region (e.g. `hot-path`,
//!   `metrics-schema`). Regions may nest; each must be closed.
//! * `lint: end-region` — close the innermost open region.
//!
//! Malformed directives (missing reason, unknown rule, stray
//! `end-region`, unclosed region) are diagnostics in their own right, so
//! the waiver layer cannot silently rot.

use crate::lexer::{lex, LexLine, LexedFile};

/// Names of all rules, in reporting order. Waivers must name one of these.
pub const RULE_NAMES: &[&str] = &[
    "unsafe-needs-safety",
    "hot-path-alloc",
    "durable-io-containment",
    "no-panic-in-serve",
    "metrics-key-order",
    "no-per-object-alloc",
];

/// One finding. `line` and `col` are 1-based source coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub line: usize,
    pub col: usize,
    /// Rule name, or `"lint-directive"` for directive-layer errors.
    pub rule: &'static str,
    pub message: String,
}

impl Diagnostic {
    fn new(line: usize, col: usize, rule: &'static str, message: String) -> Self {
        Self {
            line,
            col,
            rule,
            message,
        }
    }
}

/// A parsed `lint:` directive.
enum Directive {
    Allow { rule: String, reason_ok: bool },
    Region(String),
    EndRegion,
}

/// A waiver waiting to be matched against a finding.
struct Waiver {
    /// Line the directive appeared on (for the unused-waiver error).
    at_line: usize,
    /// Line whose findings it suppresses.
    target_line: usize,
    rule: &'static str,
    used: bool,
}

/// Per-line directive state computed in one pass.
struct Directives {
    waivers: Vec<Waiver>,
    /// `regions[i]` = names of regions active on line `i` (0-based),
    /// exclusive of the marker lines themselves.
    regions: Vec<Vec<String>>,
    errors: Vec<Diagnostic>,
}

/// Parses the text after a leading `lint:`. Returns `Err(message)` for a
/// recognizably malformed directive.
fn parse_directive(rest: &str) -> Result<Directive, String> {
    let rest = rest.trim();
    if rest == "end-region" {
        return Ok(Directive::EndRegion);
    }
    for (kw, is_allow) in [("allow(", true), ("region(", false)] {
        if let Some(body) = rest.strip_prefix(kw) {
            let Some(close) = body.find(')') else {
                return Err(format!("missing `)` in `lint: {kw}…`"));
            };
            let name = body[..close].trim().to_string();
            let tail = body[close + 1..].trim();
            if !is_allow {
                if name.is_empty() {
                    return Err("empty region name".to_string());
                }
                if !tail.is_empty() {
                    return Err(format!("unexpected text after `region({name})`"));
                }
                return Ok(Directive::Region(name));
            }
            let reason_ok = match tail.strip_prefix("--") {
                Some(reason) => !reason.trim().is_empty(),
                None => false,
            };
            return Ok(Directive::Allow {
                rule: name,
                reason_ok,
            });
        }
    }
    Err(format!(
        "unknown lint directive `{}` (expected allow(…) -- reason, region(…), or end-region)",
        rest.split_whitespace().next().unwrap_or("")
    ))
}

fn canonical_rule(name: &str) -> Option<&'static str> {
    RULE_NAMES.iter().find(|r| **r == name).copied()
}

fn has_code(line: &LexLine) -> bool {
    !line.code.trim().is_empty()
}

/// Scans every comment for directives, building the waiver table and the
/// per-line active-region map.
fn collect_directives(file: &LexedFile) -> Directives {
    let n = file.lines.len();
    let mut d = Directives {
        waivers: Vec::new(),
        regions: vec![Vec::new(); n],
        errors: Vec::new(),
    };
    // (name, opened_at_line) — innermost last.
    let mut open: Vec<(String, usize)> = Vec::new();

    for (idx, line) in file.lines.iter().enumerate() {
        let trimmed = line.comment.trim();
        let lineno = idx + 1;
        if let Some(rest) = trimmed.strip_prefix("lint:") {
            match parse_directive(rest) {
                Ok(Directive::Allow { rule, reason_ok }) => match canonical_rule(&rule) {
                    Some(rule_name) => {
                        if !reason_ok {
                            d.errors.push(Diagnostic::new(
                                lineno,
                                1,
                                "lint-directive",
                                format!(
                                    "waiver for `{rule_name}` needs a reason: \
                                     `lint: allow({rule_name}) -- <why>`"
                                ),
                            ));
                        } else {
                            let target = if has_code(line) {
                                idx
                            } else {
                                // First following line with code; falls back
                                // to the directive line (will read unused).
                                (idx + 1..n)
                                    .find(|&j| has_code(&file.lines[j]))
                                    .unwrap_or(idx)
                            };
                            d.waivers.push(Waiver {
                                at_line: lineno,
                                target_line: target + 1,
                                rule: rule_name,
                                used: false,
                            });
                        }
                    }
                    None => d.errors.push(Diagnostic::new(
                        lineno,
                        1,
                        "lint-directive",
                        format!("waiver names unknown rule `{rule}`"),
                    )),
                },
                Ok(Directive::Region(name)) => open.push((name, lineno)),
                Ok(Directive::EndRegion) => {
                    if open.pop().is_none() {
                        d.errors.push(Diagnostic::new(
                            lineno,
                            1,
                            "lint-directive",
                            "`lint: end-region` with no open region".to_string(),
                        ));
                    }
                }
                Err(msg) => {
                    d.errors
                        .push(Diagnostic::new(lineno, 1, "lint-directive", msg));
                }
            }
            // Region membership is exclusive of marker lines; nothing more
            // to do for this line.
            continue;
        }
        for (name, _) in &open {
            d.regions[idx].push(name.clone());
        }
    }
    for (name, at) in open {
        d.errors.push(Diagnostic::new(
            at,
            1,
            "lint-directive",
            format!("region `{name}` is never closed (`lint: end-region`)"),
        ));
    }
    d
}

/// Whether the byte before `pos` allows a word-start match (not part of a
/// longer identifier, e.g. `SmallVec::new` must not match `Vec::new`).
fn word_start(code: &str, pos: usize) -> bool {
    pos == 0
        || !code.as_bytes()[pos - 1].is_ascii_alphanumeric() && code.as_bytes()[pos - 1] != b'_'
}

fn word_end(code: &str, end: usize) -> bool {
    end >= code.len()
        || !code.as_bytes()[end].is_ascii_alphanumeric() && code.as_bytes()[end] != b'_'
}

/// All occurrences of `needle` in `code`, as 0-based offsets. Needles
/// starting with an identifier byte must also start a word (so
/// `SmallVec::new` never matches `Vec::new`); needles like `.unwrap()`
/// supply their own boundary.
fn find_all(code: &str, needle: &str) -> Vec<usize> {
    let check_start = needle
        .as_bytes()
        .first()
        .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_');
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(p) = code[from..].find(needle) {
        let pos = from + p;
        if !check_start || word_start(code, pos) {
            out.push(pos);
        }
        from = pos + 1;
    }
    out
}

/// The per-file context a rule sees.
pub struct FileContext<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    pub file: &'a LexedFile,
    regions: &'a [Vec<String>],
}

impl FileContext<'_> {
    fn in_region(&self, idx: usize, name: &str) -> bool {
        self.regions
            .get(idx)
            .is_some_and(|r| r.iter().any(|n| n == name))
    }

    fn in_tests_dir(&self) -> bool {
        self.rel_path.contains("/tests/") || self.rel_path.ends_with("/build.rs")
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe-needs-safety
// ---------------------------------------------------------------------------

/// Accepts a `SAFETY:` discussion in a comment: the conventional
/// `// SAFETY: …` marker or a rustdoc `# Safety` section.
fn is_safety_comment(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// Is line `idx` part of a contiguous comment/attribute run (no code other
/// than attributes)?
fn is_comment_or_attr(line: &LexLine) -> bool {
    let code = line.code.trim();
    if code.is_empty() {
        !line.comment.trim().is_empty()
    } else {
        code.starts_with("#[") || code.starts_with("#!")
    }
}

fn rule_unsafe_needs_safety(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_tests_dir() {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pos in find_all(&line.code, "unsafe") {
            if !word_end(&line.code, pos + "unsafe".len()) {
                continue;
            }
            if is_safety_comment(&line.comment) {
                continue;
            }
            // Walk the contiguous comment/attribute block directly above.
            let mut justified = false;
            let mut k = idx;
            while k > 0 {
                k -= 1;
                let above = &ctx.file.lines[k];
                if !is_comment_or_attr(above) {
                    break;
                }
                if is_safety_comment(&above.comment) {
                    justified = true;
                    break;
                }
            }
            if !justified {
                out.push(Diagnostic::new(
                    idx + 1,
                    pos + 1,
                    "unsafe-needs-safety",
                    "`unsafe` without a `// SAFETY:` comment in the block above".to_string(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 2: hot-path-alloc
// ---------------------------------------------------------------------------

const ALLOC_NEEDLES: &[&str] = &[
    "Vec::new",
    "vec![",
    "Box::new",
    "format!",
    ".collect()",
    ".to_vec()",
    "String::from",
];

fn rule_hot_path_alloc(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test || !ctx.in_region(idx, "hot-path") {
            continue;
        }
        for needle in ALLOC_NEEDLES {
            for pos in find_all(&line.code, needle) {
                out.push(Diagnostic::new(
                    idx + 1,
                    pos + 1,
                    "hot-path-alloc",
                    format!("`{needle}` allocates inside a `hot-path` region"),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: durable-io-containment
// ---------------------------------------------------------------------------

const IO_NEEDLES: &[&str] = &["fs::write", "File::create", "fs::rename", "OpenOptions"];

/// Files allowed to touch the filesystem mutation APIs directly: the two
/// stage-disciplined durability modules.
const BLESSED_IO: &[&str] = &["crates/serve/src/snapshot.rs", "crates/serve/src/wal.rs"];

fn rule_durable_io(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.in_tests_dir() || BLESSED_IO.contains(&ctx.rel_path) {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in IO_NEEDLES {
            for pos in find_all(&line.code, needle) {
                out.push(Diagnostic::new(
                    idx + 1,
                    pos + 1,
                    "durable-io-containment",
                    format!(
                        "raw `{needle}` outside the blessed durability modules \
                         (route through snapshot.rs/wal.rs helpers)"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 4: no-panic-in-serve
// ---------------------------------------------------------------------------

const PANIC_NEEDLES: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!"];

fn rule_no_panic_in_serve(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.rel_path.starts_with("crates/serve/src/") {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for needle in PANIC_NEEDLES {
            for pos in find_all(&line.code, needle) {
                out.push(Diagnostic::new(
                    idx + 1,
                    pos + 1,
                    "no-panic-in-serve",
                    format!(
                        "`{needle}` on a serve path (return a ServeError or waive with reason)"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: metrics-key-order
// ---------------------------------------------------------------------------

/// The file whose `metrics-schema` regions are pinned by the manifest.
const METRICS_FILE: &str = "crates/serve/src/metrics.rs";

fn rule_metrics_key_order(ctx: &FileContext<'_>, manifest: &[String], out: &mut Vec<Diagnostic>) {
    if ctx.rel_path != METRICS_FILE {
        return;
    }
    // Extract (line, col, key) for every string literal inside a
    // `metrics-schema` region, in source order.
    let mut keys: Vec<(usize, usize, String)> = Vec::new();
    let mut last_region_line = 0usize;
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test || !ctx.in_region(idx, "metrics-schema") {
            continue;
        }
        last_region_line = idx + 1;
        for (col, s) in &line.strings {
            keys.push((idx + 1, *col, s.clone()));
        }
    }
    if keys.is_empty() && manifest.is_empty() {
        return;
    }
    for (i, want) in manifest.iter().enumerate() {
        match keys.get(i) {
            Some((_, _, got)) if got == want => {}
            Some((line, col, got)) => {
                out.push(Diagnostic::new(
                    *line,
                    *col,
                    "metrics-key-order",
                    format!(
                        "metrics key #{n} is \"{got}\" but the manifest pins \"{want}\" \
                         (deliberate schema change? bump crates/lint/src/metrics_keys.txt)",
                        n = i + 1
                    ),
                ));
                return;
            }
            None => {
                out.push(Diagnostic::new(
                    last_region_line.max(1),
                    1,
                    "metrics-key-order",
                    format!(
                        "metrics schema is missing key #{n} \"{want}\" pinned by the manifest",
                        n = i + 1
                    ),
                ));
                return;
            }
        }
    }
    if keys.len() > manifest.len() {
        let (line, col, got) = &keys[manifest.len()];
        out.push(Diagnostic::new(
            *line,
            *col,
            "metrics-key-order",
            format!(
                "metrics schema has unpinned extra key \"{got}\" \
                 (add it to crates/lint/src/metrics_keys.txt at position {n})",
                n = manifest.len() + 1
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// Rule 6: no-per-object-alloc
// ---------------------------------------------------------------------------

/// Patterns whose cost scales with object count when they appear inside a
/// per-object loop. Deliberately *not* listed: `.to_vec()` — a scale-hot
/// span may copy one whole buffer in bulk (one allocation total), which is
/// exactly the pattern this rule exists to steer code toward.
const PER_OBJECT_ALLOC_NEEDLES: &[&str] = &[
    "String::from",
    ".to_string()",
    ".to_owned()",
    "format!",
    "Vec::new",
    "vec![",
    ".entry(",
    ".collect(",
];

fn rule_no_per_object_alloc(ctx: &FileContext<'_>, out: &mut Vec<Diagnostic>) {
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test || !ctx.in_region(idx, "scale-hot") {
            continue;
        }
        for needle in PER_OBJECT_ALLOC_NEEDLES {
            for pos in find_all(&line.code, needle) {
                out.push(Diagnostic::new(
                    idx + 1,
                    pos + 1,
                    "no-per-object-alloc",
                    format!(
                        "`{needle}` inside a `scale-hot` region — these spans run \
                         per object at the million-object scale; allocate in bulk \
                         outside the span (a single whole-buffer `.to_vec()` is \
                         allowed) or waive with a reason"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Runs every rule over one file and applies waivers. `manifest` is the
/// pinned metrics key order (only consulted for `metrics.rs`).
pub fn check_file(rel_path: &str, src: &[u8], manifest: &[String]) -> Vec<Diagnostic> {
    let file = lex(src);
    let d = collect_directives(&file);
    let ctx = FileContext {
        rel_path,
        file: &file,
        regions: &d.regions,
    };

    let mut findings = Vec::new();
    rule_unsafe_needs_safety(&ctx, &mut findings);
    rule_hot_path_alloc(&ctx, &mut findings);
    rule_durable_io(&ctx, &mut findings);
    rule_no_panic_in_serve(&ctx, &mut findings);
    rule_metrics_key_order(&ctx, manifest, &mut findings);
    rule_no_per_object_alloc(&ctx, &mut findings);

    // Apply waivers: a finding on a waiver's target line for its rule is
    // suppressed and marks the waiver used.
    let mut waivers = d.waivers;
    let mut out: Vec<Diagnostic> = d.errors;
    for f in findings {
        let waived = waivers
            .iter_mut()
            .find(|w| w.rule == f.rule && w.target_line == f.line);
        match waived {
            Some(w) => w.used = true,
            None => out.push(f),
        }
    }
    for w in &waivers {
        if !w.used {
            out.push(Diagnostic::new(
                w.at_line,
                1,
                "lint-directive",
                format!(
                    "unused waiver for `{}` (nothing fires on line {}; delete it)",
                    w.rule, w.target_line
                ),
            ));
        }
    }
    out.sort_by_key(|dg| (dg.line, dg.col));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Diagnostic> {
        check_file(path, src.as_bytes(), &[])
    }

    #[test]
    fn unsafe_without_safety_fires_and_comment_suppresses() {
        let bad = "fn f() { unsafe { g() } }\n";
        let d = check("crates/core/src/x.rs", bad);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unsafe-needs-safety");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].col, 10);

        let good = "// SAFETY: g is infallible here.\nfn f() { unsafe { g() } }\n";
        assert!(check("crates/core/src/x.rs", good).is_empty());

        // Attribute between the comment and the item is skipped.
        let attr = "// SAFETY: fine.\n#[inline]\nunsafe fn g() {}\n";
        assert!(check("crates/core/src/x.rs", attr).is_empty());
    }

    #[test]
    fn unsafe_in_cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { unsafe { g() } }\n}\n";
        assert!(check("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_only_inside_region() {
        let src = "\
fn cold() { let v = Vec::new(); }
// lint: region(hot-path)
fn hot() { let v = Vec::new(); }
// lint: end-region
fn cold2() { let v = vec![1]; }
";
        let d = check("crates/core/src/em.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].rule), (3, "hot-path-alloc"));
    }

    #[test]
    fn durable_io_blessed_files_are_exempt() {
        let src = "fn f() { std::fs::write(p, b)?; }\n";
        assert!(check("crates/serve/src/snapshot.rs", src).is_empty());
        let d = check("crates/serve/src/bin/genclus_serve.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "durable-io-containment");
    }

    #[test]
    fn no_panic_scoped_to_serve_sources() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(check("crates/serve/src/net.rs", src).len(), 1);
        assert!(check("crates/core/src/em.rs", src).is_empty());
        // Lookalikes must not fire.
        let ok = "fn f() { x.unwrap_or_else(|p| p.into_inner()); }\n";
        assert!(check("crates/serve/src/net.rs", ok).is_empty());
    }

    #[test]
    fn waiver_suppresses_and_must_be_used_with_reason() {
        let src = "\
// lint: allow(no-panic-in-serve) -- startup path, config error is fatal by design
fn f() { x.unwrap(); }
";
        assert!(check("crates/serve/src/net.rs", src).is_empty());

        let unused = "// lint: allow(no-panic-in-serve) -- nothing here\nfn f() {}\n";
        let d = check("crates/serve/src/net.rs", unused);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unused waiver"));

        let no_reason = "// lint: allow(no-panic-in-serve)\nfn f() { x.unwrap(); }\n";
        let d = check("crates/serve/src/net.rs", no_reason);
        assert!(d.iter().any(|g| g.message.contains("needs a reason")));
    }

    #[test]
    fn trailing_waiver_applies_to_its_own_line() {
        let src =
            "fn f() { x.unwrap(); } // lint: allow(no-panic-in-serve) -- bootstrap, pre-serve\n";
        assert!(check("crates/serve/src/net.rs", src).is_empty());
    }

    #[test]
    fn unknown_rule_and_stray_end_region_are_errors() {
        let d = check("a.rs", "// lint: allow(no-such-rule) -- why\n");
        assert!(d[0].message.contains("unknown rule"));
        let d = check("a.rs", "// lint: end-region\n");
        assert!(d[0].message.contains("no open region"));
        let d = check("a.rs", "// lint: region(hot-path)\nfn f() {}\n");
        assert!(d[0].message.contains("never closed"));
    }

    #[test]
    fn metrics_key_order_diffs_against_manifest() {
        let manifest: Vec<String> = ["alpha", "beta"].iter().map(|s| s.to_string()).collect();
        let ok = "\
// lint: region(metrics-schema)
push(\"alpha\");
push(\"beta\");
// lint: end-region
";
        assert!(check_file("crates/serve/src/metrics.rs", ok.as_bytes(), &manifest).is_empty());

        let swapped = "\
// lint: region(metrics-schema)
push(\"beta\");
push(\"alpha\");
// lint: end-region
";
        let d = check_file("crates/serve/src/metrics.rs", swapped.as_bytes(), &manifest);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].rule), (2, "metrics-key-order"));

        let extra = "\
// lint: region(metrics-schema)
push(\"alpha\");
push(\"beta\");
push(\"gamma\");
// lint: end-region
";
        let d = check_file("crates/serve/src/metrics.rs", extra.as_bytes(), &manifest);
        assert!(d[0].message.contains("unpinned extra key"));

        let missing = "\
// lint: region(metrics-schema)
push(\"alpha\");
// lint: end-region
";
        let d = check_file("crates/serve/src/metrics.rs", missing.as_bytes(), &manifest);
        assert!(d[0].message.contains("missing key"));
    }

    #[test]
    fn per_object_alloc_fires_only_inside_scale_hot() {
        let src = "\
fn cold() { let s = name.to_string(); }
// lint: region(scale-hot)
fn hot() { let s = name.to_string(); }
// lint: end-region
fn cold2() { map.entry(k).or_default(); }
";
        let d = check("crates/hin/src/delta.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].line, d[0].rule), (3, "no-per-object-alloc"));
        assert_eq!(d[0].col, 24);
    }

    #[test]
    fn per_object_alloc_catches_each_needle_kind() {
        for bad in [
            "let s = String::from(name);",
            "let s = name.to_owned();",
            "let s = format!(\"o{i}\");",
            "let v = Vec::new();",
            "let v = vec![0u32; 1];",
            "slots.entry(h).or_insert(id);",
            "let v: Vec<u32> = it.collect();",
        ] {
            let src = format!("// lint: region(scale-hot)\n{bad}\n// lint: end-region\n");
            let d = check("crates/hin/src/codec.rs", &src);
            assert_eq!(d.len(), 1, "expected one finding for `{bad}`: {d:#?}");
            assert_eq!(d[0].rule, "no-per-object-alloc");
        }
    }

    #[test]
    fn bulk_to_vec_is_allowed_in_scale_hot() {
        let src = "\
// lint: region(scale-hot)
let arena = NameArena::from_raw_parts(blob.to_vec(), offsets)?;
// lint: end-region
";
        assert!(check("crates/hin/src/codec.rs", src).is_empty());
    }

    #[test]
    fn per_object_alloc_waiver_works() {
        let src = "\
// lint: region(scale-hot)
// lint: allow(no-per-object-alloc) -- one-time header, not per object
let tag = format!(\"v{version}\");
// lint: end-region
";
        assert!(check("crates/hin/src/codec.rs", src).is_empty());
    }

    #[test]
    fn needles_in_strings_and_comments_do_not_fire() {
        let src = "fn f() { log(\".unwrap() is banned\"); } // mentions panic! too\n";
        assert!(check("crates/serve/src/net.rs", src).is_empty());
    }
}
