//! CLI for the workspace lint. Exit codes: 0 clean, 1 findings, 2 usage
//! or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: genclus-lint --workspace        lint the enclosing Cargo workspace\n\
                genclus-lint <path>...          lint specific files or directories"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let result = if args.len() == 1 && args[0] == "--workspace" {
        genclus_lint::run_workspace(Path::new("."))
    } else if args.iter().any(|a| a.starts_with("--")) {
        return usage();
    } else {
        // Explicit files/dirs: lint them relative to the current directory.
        let mut files: Vec<PathBuf> = Vec::new();
        for arg in &args {
            let p = PathBuf::from(arg);
            if p.is_dir() {
                match genclus_lint::collect_rs_files(&p) {
                    Ok(mut fs) => files.append(&mut fs),
                    Err(e) => {
                        eprintln!("genclus-lint: {}: {e}", p.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                files.push(p);
            }
        }
        genclus_lint::run(Path::new(""), &files).map(|f| (files.len(), f))
    };

    match result {
        Ok((checked, findings)) => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                eprintln!("genclus-lint: {checked} files clean");
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "genclus-lint: {} finding(s) across {checked} files",
                    findings.len()
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("genclus-lint: {e}");
            ExitCode::from(2)
        }
    }
}
