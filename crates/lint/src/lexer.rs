//! A small Rust *surface* lexer: enough syntax awareness to separate code
//! from comments and literal contents, without parsing (no `syn`, no
//! dependency — the same vendored-stand-in constraint as the rest of the
//! workspace).
//!
//! The lexer's contract is layout preservation: every input line maps to
//! one [`LexLine`] whose `code` buffer has **the same byte length as the
//! source line**, with comment bytes and string/char-literal *contents*
//! replaced by spaces (the delimiting quotes stay). A rule that finds a
//! pattern at byte offset `o` of `code` can therefore report column
//! `o + 1` and it is the real source column — no source map needed.
//!
//! What it understands:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), including block comments spanning lines;
//! * string literals with escapes (`"a\"b"`), byte strings (`b"…"`), raw
//!   strings with any hash depth (`r"…"`, `r##"…"##`, `br#"…"#`);
//! * char literals (`'a'`, `'\''`, `'\u{1F600}'`, `b'x'`) vs lifetimes
//!   (`'a`, `'static`) — a quote followed by an identifier with no closing
//!   quote is a lifetime, not an unterminated literal;
//! * `#[cfg(test)]` scope tracking by brace depth: every line inside an
//!   item gated by `#[cfg(test)]` (the attribute line through the item's
//!   closing brace) is flagged `in_test`, so rules can exempt test code.
//!   An attribute that gates a braceless item (`#[cfg(test)] use x;`) is
//!   cancelled by the `;`.
//!
//! The lexer never fails: arbitrary byte soup (invalid UTF-8, unterminated
//! literals, stray quotes) produces *some* lex, degrading gracefully — the
//! fuzz suite asserts it never panics. Unterminated states simply run to
//! end of file.

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct LexLine {
    /// The line with comments and literal contents blanked to spaces;
    /// same byte length as the source line, so offsets are real columns.
    pub code: String,
    /// Concatenated comment text visible on this line (comment markers
    /// `//` / `/*` / `*/` stripped), separated by single spaces.
    pub comment: String,
    /// `(column, content)` of every string literal **starting** on this
    /// line (1-based column of the opening quote; content is the raw
    /// uninterpreted bytes between the delimiters, lossily decoded).
    /// Char literals and byte strings are excluded — rule 5 pins JSON
    /// keys, which are plain `"…"` literals.
    pub strings: Vec<(usize, String)>,
    /// Whether any part of this line lies inside `#[cfg(test)]`-gated code.
    pub in_test: bool,
}

/// A whole lexed file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub lines: Vec<LexLine>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Escaped (non-raw) string; `raw_hashes: None`.
    Str,
    /// Raw string terminated by `"` + this many `#`s.
    RawStr(u32),
}

/// Accumulates one output line while scanning.
struct LineBuf {
    code: Vec<u8>,
    comment: Vec<u8>,
    strings: Vec<(usize, String)>,
    touched_test: bool,
    /// Whether the literal currently being blanked feeds `strings` (plain
    /// `"…"` / `r"…"` literals do; byte strings do not).
    collecting: bool,
}

impl LineBuf {
    fn new() -> Self {
        Self {
            code: Vec::new(),
            comment: Vec::new(),
            strings: Vec::new(),
            touched_test: false,
            collecting: false,
        }
    }

    fn finish(&mut self) -> LexLine {
        let line = LexLine {
            code: String::from_utf8_lossy(&self.code).into_owned(),
            comment: String::from_utf8_lossy(&self.comment).into_owned(),
            strings: std::mem::take(&mut self.strings),
            in_test: self.touched_test,
        };
        self.code.clear();
        self.comment.clear();
        line
    }

    fn push_comment_byte(&mut self, b: u8) {
        self.comment.push(b);
        self.code.push(b' ');
    }

    fn comment_break(&mut self) {
        if !self.comment.is_empty() && *self.comment.last().unwrap_or(&b' ') != b' ' {
            self.comment.push(b' ');
        }
    }
}

/// Tracks `#[cfg(test)]` item scopes by brace depth.
struct TestTracker {
    depth: i64,
    /// Depth at which a pending `#[cfg(test)]` attribute was seen.
    pending_at: Option<i64>,
    /// Depth *outside* the test item's braces; the region is live while
    /// `depth > region_at`.
    region_at: Option<i64>,
}

impl TestTracker {
    fn new() -> Self {
        Self {
            depth: 0,
            pending_at: None,
            region_at: None,
        }
    }

    fn active(&self) -> bool {
        self.region_at.is_some() || self.pending_at.is_some()
    }

    fn saw_attr(&mut self) {
        if self.region_at.is_none() && self.pending_at.is_none() {
            self.pending_at = Some(self.depth);
        }
    }

    fn open_brace(&mut self) {
        if let Some(at) = self.pending_at.take() {
            if self.region_at.is_none() {
                self.region_at = Some(at.min(self.depth));
            }
        }
        self.depth += 1;
    }

    fn close_brace(&mut self) -> bool {
        self.depth -= 1;
        if let Some(at) = self.region_at {
            if self.depth <= at {
                self.region_at = None;
                return true; // region ended on this byte
            }
        }
        false
    }

    /// Returns true when the `;` closed a `#[cfg(test)]`-gated braceless
    /// item (`#[cfg(test)] use …;`) — that line is still test code.
    fn semicolon(&mut self) -> bool {
        if let Some(at) = self.pending_at {
            if self.depth == at {
                self.pending_at = None;
                return true;
            }
        }
        false
    }
}

/// Lexes `src` into per-line code/comment/string views. Never panics on
/// any input.
pub fn lex(src: &[u8]) -> LexedFile {
    let mut out = LexedFile::default();
    let mut buf = LineBuf::new();
    let mut state = State::Code;
    let mut test = TestTracker::new();
    let mut i = 0usize;
    let n = src.len();

    while i < n {
        let b = src[i];
        if b == b'\n' {
            // A line comment ends at the newline; everything else carries
            // over (block comments, raw strings — and unterminated normal
            // strings degrade by continuing, which keeps the lexer total).
            if state == State::LineComment {
                state = State::Code;
            }
            buf.touched_test |= test.active();
            out.lines.push(buf.finish());
            buf.touched_test = false;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                // Comment openers.
                if b == b'/' && i + 1 < n && src[i + 1] == b'/' {
                    state = State::LineComment;
                    buf.comment_break();
                    buf.code.push(b' ');
                    buf.code.push(b' ');
                    i += 2;
                    // Skip doc-comment markers (`///`, `//!`) so comment
                    // text starts at the content.
                    if i < n && (src[i] == b'/' || src[i] == b'!') {
                        buf.code.push(b' ');
                        i += 1;
                    }
                    continue;
                }
                if b == b'/' && i + 1 < n && src[i + 1] == b'*' {
                    state = State::BlockComment(1);
                    buf.comment_break();
                    buf.code.push(b' ');
                    buf.code.push(b' ');
                    i += 2;
                    // Skip the doc marker of `/** … */` / `/*! … */`.
                    if i < n && (src[i] == b'*' || src[i] == b'!') && !src[i..].starts_with(b"*/") {
                        buf.code.push(b' ');
                        i += 1;
                    }
                    continue;
                }
                // `#[cfg(test)]` detection (exact form; rustfmt normalizes).
                if b == b'#' && src[i..].starts_with(b"#[cfg(test)]") {
                    test.saw_attr();
                    buf.touched_test = true;
                    for _ in 0.."#[cfg(test)]".len() {
                        buf.code.push(src[i]);
                        i += 1;
                    }
                    continue;
                }
                // Raw / byte string prefixes. Only when the prefix is not
                // the tail of an identifier (`for r in…`, `let br = …`).
                let prev_ident = i > 0 && is_ident_byte(src[i - 1]);
                if !prev_ident && (b == b'r' || b == b'b') {
                    if let Some((quote_off, hashes, is_plain_str)) = raw_prefix(&src[i..], b) {
                        // Emit the prefix bytes as code, then enter the
                        // string state at the quote.
                        for _ in 0..=quote_off {
                            buf.code.push(src[i]);
                            i += 1;
                        }
                        let col = buf.code.len(); // column of byte after quote
                        if hashes == u32::MAX {
                            state = State::Str;
                        } else {
                            state = State::RawStr(hashes);
                        }
                        buf.collecting = is_plain_str;
                        if is_plain_str {
                            buf.strings.push((col, String::new()));
                        }
                        continue;
                    }
                }
                if b == b'"' {
                    buf.code.push(b'"');
                    buf.strings.push((buf.code.len(), String::new()));
                    buf.collecting = true;
                    state = State::Str;
                    i += 1;
                    continue;
                }
                if b == b'\'' {
                    // Char literal vs lifetime.
                    if let Some(end) = char_literal_end(src, i) {
                        buf.code.push(b'\'');
                        for _ in i + 1..end {
                            buf.code.push(b' ');
                        }
                        buf.code.push(b'\'');
                        i = end + 1;
                        continue;
                    }
                    buf.code.push(b'\'');
                    i += 1;
                    continue;
                }
                match b {
                    b'{' => test.open_brace(),
                    b'}' if test.close_brace() => buf.touched_test = true,
                    b';' if test.semicolon() => buf.touched_test = true,
                    _ => {}
                }
                buf.code.push(b);
                i += 1;
            }
            State::LineComment => {
                buf.push_comment_byte(b);
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && i + 1 < n && src[i + 1] == b'/' {
                    buf.code.push(b' ');
                    buf.code.push(b' ');
                    buf.comment_break();
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if b == b'/' && i + 1 < n && src[i + 1] == b'*' {
                    buf.code.push(b' ');
                    buf.code.push(b' ');
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    buf.push_comment_byte(b);
                    i += 1;
                }
            }
            State::Str => {
                // `\` + newline is a line continuation: let the top-of-loop
                // newline handling break the line so line numbers stay true.
                if b == b'\\' && i + 1 < n && src[i + 1] != b'\n' {
                    push_string_bytes(&mut buf, &src[i..i + 2]);
                    i += 2;
                } else if b == b'"' {
                    buf.code.push(b'"');
                    state = State::Code;
                    i += 1;
                } else {
                    push_string_bytes(&mut buf, &src[i..i + 1]);
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw(&src[i + 1..], hashes) {
                    buf.code.push(b'"');
                    for _ in 0..hashes {
                        buf.code.push(b'#');
                    }
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    push_string_bytes(&mut buf, &src[i..i + 1]);
                    i += 1;
                }
            }
        }
    }
    // Final (unterminated) line.
    if !buf.code.is_empty() || !buf.comment.is_empty() || !buf.strings.is_empty() || n == 0 {
        buf.touched_test |= test.active();
        out.lines.push(buf.finish());
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// If `src` (starting at an `r` or `b`) opens a raw/byte string, returns
/// `(offset of the opening quote, hash count, is_plain_str)` where a hash
/// count of `u32::MAX` means "escaped string body" (`b"…"`).
/// `is_plain_str` is true only for `r"…"` forms (no `b`), whose contents
/// rule 5 may pin.
fn raw_prefix(src: &[u8], first: u8) -> Option<(usize, u32, bool)> {
    let mut j = 1usize;
    let mut raw = first == b'r';
    let byte = first == b'b';
    if byte && src.len() > 1 && src[1] == b'r' {
        raw = true;
        j = 2;
    }
    if byte && !raw {
        // b"…" (escaped body) or b'…' (handled by the char path: return
        // None so the caller emits `b` as code and the `'` branch runs).
        return match src.get(1) {
            Some(b'"') => Some((1, u32::MAX, false)),
            _ => None,
        };
    }
    if !raw {
        return None;
    }
    let mut hashes = 0u32;
    while src.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if src.get(j) == Some(&b'"') {
        Some((j, hashes, !byte))
    } else {
        None
    }
}

/// Whether the bytes after a `"` inside a raw string close it (`hashes`
/// further `#`s follow).
fn closes_raw(rest: &[u8], hashes: u32) -> bool {
    let h = hashes as usize;
    rest.len() >= h && rest[..h].iter().all(|&b| b == b'#')
}

/// If a `'` at `start` opens a char literal, returns the index of its
/// closing quote; `None` means it is a lifetime / label. A raw newline
/// can never appear inside a char literal, so the scan refuses to cross
/// one — that keeps the caller's line accounting exact.
fn char_literal_end(src: &[u8], start: usize) -> Option<usize> {
    let mut j = start + 1;
    match src.get(j)? {
        b'\\' => {
            j += 1;
            match src.get(j)? {
                b'u' => {
                    // '\u{…}'
                    j += 1;
                    if src.get(j) != Some(&b'{') {
                        return None;
                    }
                    loop {
                        let b = *src.get(j)?;
                        if b == b'\n' {
                            return None;
                        }
                        j += 1;
                        if b == b'}' {
                            break;
                        }
                    }
                }
                b'\n' => return None,
                _ => j += 1,
            }
            (src.get(j) == Some(&b'\'')).then_some(j)
        }
        b'\'' => None, // '' is not a char literal
        b'\n' => None, // a literal can't hold a raw newline
        _ => {
            // One (possibly multi-byte) character, then a closing quote.
            // A lifetime ('a, 'static) has an identifier here and *no*
            // closing quote right after its first char — except the
            // single-letter case ('a'), which the quote check resolves.
            let first = *src.get(j)?;
            let len = utf8_len(first);
            j += len;
            (src.get(j) == Some(&b'\'')).then_some(j)
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn push_string_bytes(buf: &mut LineBuf, bytes: &[u8]) {
    for &b in bytes {
        buf.code.push(b' ');
        if buf.collecting {
            if let Some((_, s)) = buf.strings.last_mut() {
                // Raw storage; escapes stay escaped. Lossy at line level is
                // fine: rule 5 compares plain ASCII keys.
                s.push(b as char);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(s: &str) -> LexedFile {
        lex(s.as_bytes())
    }

    #[test]
    fn comments_are_stripped_and_collected() {
        let f = lex_str("let x = 1; // trailing note\n/* block */ let y = 2;\n");
        assert_eq!(f.lines[0].code.trim_end(), "let x = 1;");
        assert!(f.lines[0].comment.contains("trailing note"));
        assert!(f.lines[1].code.contains("let y = 2;"));
        assert!(f.lines[1].comment.contains("block"));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex_str("a /* one /* two */ still */ b\n");
        let code = &f.lines[0].code;
        assert!(code.contains('a') && code.contains('b'));
        assert!(!code.contains("one") && !code.contains("still"));
        assert!(f.lines[0].comment.contains("two"));
    }

    #[test]
    fn stray_quote_before_newline_does_not_eat_the_line_break() {
        // `'` + newline + `'` is NOT a char literal (a literal can't hold
        // a raw newline); the scan must stop at the line boundary so each
        // output line keeps its source byte length.
        let f = lex(b"'\n'");
        assert_eq!(f.lines.len(), 2);
        assert_eq!(f.lines[0].code, "'");
        assert_eq!(f.lines[1].code, "'");
    }

    #[test]
    fn multi_line_block_comment_blanks_every_line() {
        let f = lex_str("x/*\n .unwrap()\n*/y\n");
        assert!(!f.lines[1].code.contains(".unwrap()"));
        assert!(f.lines[1].comment.contains(".unwrap()"));
        assert!(f.lines[2].code.contains('y'));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_stay() {
        let f = lex_str(r#"call(".unwrap()", "b // no comment");"#);
        let code = &f.lines[0].code;
        assert!(!code.contains(".unwrap()"));
        assert!(!code.contains("no comment"));
        assert!(f.lines[0].comment.is_empty());
        assert_eq!(code.len(), r#"call(".unwrap()", "b // no comment");"#.len());
        assert_eq!(f.lines[0].strings.len(), 2);
        assert_eq!(f.lines[0].strings[0].1, ".unwrap()");
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = lex_str(r#"let s = "a\"b// still string"; let t = 1;"#);
        assert!(f.lines[0].code.contains("let t = 1;"));
        assert!(f.lines[0].comment.is_empty());
        assert_eq!(f.lines[0].strings[0].1, r#"a\"b// still string"#);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let f = lex_str(r###"let s = r#"quote " and // slash"# ; done();"###);
        assert!(f.lines[0].code.contains("done();"));
        assert!(f.lines[0].comment.is_empty());
        assert_eq!(f.lines[0].strings[0].1, r#"quote " and // slash"#);
        // Hash-less raw string.
        let f = lex_str(r#"let s = r"\no escape"; after();"#);
        assert!(f.lines[0].code.contains("after();"));
        assert_eq!(f.lines[0].strings[0].1, r"\no escape");
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let f = lex_str(r##"w(b"GENCLUS\0"); v(br#"x"#); tail();"##);
        assert!(f.lines[0].code.contains("tail();"));
        // Byte strings are not collected as plain strings.
        assert!(f.lines[0].strings.is_empty());
        // …and their contents must not leak into an earlier plain string.
        let f = lex_str(r#"a("key"); w(b"JUNK");"#);
        assert_eq!(f.lines[0].strings.len(), 1);
        assert_eq!(f.lines[0].strings[0].1, "key");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = lex_str("fn f<'a>(x: &'a str) { let c = '\"'; let d = '\\''; }\n");
        let code = &f.lines[0].code;
        // The quote chars inside char literals must not open strings.
        assert!(code.contains("let d ="));
        assert!(f.lines[0].strings.is_empty());
        // Unicode char literal.
        let f = lex_str("let c = '\u{1F600}'; let x = \"k\";\n");
        assert_eq!(f.lines[0].strings.len(), 1);
        // b'x' byte char.
        let f = lex_str("self.expect(b'{')?; q(\"k\")\n");
        assert_eq!(f.lines[0].strings.len(), 1);
        assert_eq!(f.lines[0].strings[0].1, "k");
        assert!(f.lines[0].code.contains("self.expect(b' ')?"));
    }

    #[test]
    fn cfg_test_scopes_by_brace_depth() {
        let src = "\
fn live() { x(); }
#[cfg(test)]
mod tests {
    fn t() { y(); }
}
fn live2() { z(); }
";
        let f = lex_str(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test); // the attribute line
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test); // closing brace
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn cfg_test_on_braceless_item_is_cancelled_by_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n";
        let f = lex_str(src);
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test, "the `;` must cancel the pending gate");
    }

    #[test]
    fn cfg_test_string_in_code_does_not_gate() {
        let f = lex_str("let s = \"#[cfg(test)]\";\nfn live() { x(); }\n");
        assert!(!f.lines[1].in_test);
    }

    #[test]
    fn columns_survive_blanking() {
        let src = r#"ab("s") ; x.unwrap()"#;
        let f = lex_str(src);
        let col = f.lines[0].code.find(".unwrap()").unwrap();
        assert_eq!(&src[col..col + 9], ".unwrap()");
    }

    #[test]
    fn empty_and_unterminated_inputs() {
        assert_eq!(lex(b"").lines.len(), 1);
        lex(b"\"unterminated");
        lex(b"/* unterminated");
        lex(br##"r#"unterminated"##);
        lex(b"'");
        lex(&[0xff, 0xfe, b'"', 0x80, b'\n', b'x']);
    }
}
