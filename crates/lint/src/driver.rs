//! Workspace walking and reporting: finds the workspace root, collects
//! `.rs` sources, runs the rule engine over each, and formats findings as
//! `path:line:col: [rule] message` lines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{check_file, Diagnostic};

/// Directory names never descended into. `fixtures` holds the seeded
/// violation corpus — those files *must* fail the lint, so the workspace
/// walk skips them and the test suite checks them explicitly.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "node_modules"];

/// The pinned metrics key order (rule 5). One key per line; blank lines
/// and `#` comments ignored.
const METRICS_MANIFEST: &str = include_str!("metrics_keys.txt");

/// Parses the embedded manifest into the key list rule 5 diffs against.
pub fn metrics_manifest() -> Vec<String> {
    METRICS_MANIFEST
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Walks up from `start` to the enclosing Cargo workspace root (the
/// directory whose `Cargo.toml` has a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collects every `.rs` file under `root`, skipping [`SKIP_DIRS`], sorted
/// for deterministic output.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// One finding bound to the file it came from.
#[derive(Debug)]
pub struct FileDiagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub diag: Diagnostic,
}

impl std::fmt::Display for FileDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.diag.line, self.diag.col, self.diag.rule, self.diag.message
        )
    }
}

/// Workspace-relative `/`-separated form of `path`.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_string_lossy();
    if std::path::MAIN_SEPARATOR == '/' {
        s.into_owned()
    } else {
        s.replace(std::path::MAIN_SEPARATOR, "/")
    }
}

/// Runs every rule over `files`, returning findings in path order.
pub fn run(root: &Path, files: &[PathBuf]) -> io::Result<Vec<FileDiagnostic>> {
    let manifest = metrics_manifest();
    let mut out = Vec::new();
    for path in files {
        let src = fs::read(path)?;
        let rel = rel_path(root, path);
        for diag in check_file(&rel, &src, &manifest) {
            out.push(FileDiagnostic {
                path: rel.clone(),
                diag,
            });
        }
    }
    Ok(out)
}

/// Convenience: lint the whole workspace rooted at (or above) `start`.
/// Returns `(files_checked, findings)`.
pub fn run_workspace(start: &Path) -> io::Result<(usize, Vec<FileDiagnostic>)> {
    let root = find_workspace_root(start).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "no enclosing Cargo workspace (Cargo.toml with [workspace]) found",
        )
    })?;
    let files = collect_rs_files(&root)?;
    let findings = run(&root, &files)?;
    Ok((files.len(), findings))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_nonempty_and_starts_with_ops() {
        let m = metrics_manifest();
        assert!(m.len() > 20, "manifest should pin the full schema");
        assert_eq!(m[0], "membership");
    }

    #[test]
    fn display_format_is_path_line_col_rule() {
        let fd = FileDiagnostic {
            path: "crates/serve/src/net.rs".to_string(),
            diag: Diagnostic {
                line: 7,
                col: 3,
                rule: "no-panic-in-serve",
                message: "msg".to_string(),
            },
        };
        assert_eq!(
            fd.to_string(),
            "crates/serve/src/net.rs:7:3: [no-panic-in-serve] msg"
        );
    }
}
