//! Fuzz coverage for the surface lexer (vendored proptest): totality on
//! arbitrary byte soup, layout preservation, and tokenization of the
//! tricky literal forms (raw strings, nested comments, escapes).

use genclus_lint::lexer::lex;
use proptest::prelude::*;

/// Bytes biased toward Rust's lexical vocabulary so random streams reach
/// deep into the comment/string/char state machine instead of staying in
/// plain code.
const ALPHABET: &[u8] = br##"/*"'\rb#!{};na
"##;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup (including invalid UTF-8): the lexer must
    /// produce *some* lex, never panic, and keep its line accounting —
    /// one output line per newline plus the final fragment.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let lexed = lex(&bytes);
        let newlines = bytes.iter().filter(|&&b| b == b'\n').count();
        prop_assert!(lexed.lines.len() >= newlines);
        prop_assert!(lexed.lines.len() <= newlines + 1);
    }

    /// Lexical soup: same totality property, far deeper coverage of the
    /// comment-nesting and literal state machines.
    #[test]
    fn lexical_soup_never_panics(
        picks in proptest::collection::vec(0usize..ALPHABET.len(), 0..512),
    ) {
        let bytes: Vec<u8> = picks.iter().map(|&i| ALPHABET[i]).collect();
        let _ = lex(&bytes);
    }

    /// Layout preservation: for ASCII inputs every output line's `code`
    /// buffer has exactly the byte length of its source line, so match
    /// offsets are real columns.
    #[test]
    fn code_lines_preserve_byte_length(
        picks in proptest::collection::vec(0usize..ALPHABET.len(), 0..512),
    ) {
        let bytes: Vec<u8> = picks.iter().map(|&i| ALPHABET[i]).collect();
        let lexed = lex(&bytes);
        let src_lines: Vec<&[u8]> = bytes.split(|&b| b == b'\n').collect();
        for (src, out) in src_lines.iter().zip(&lexed.lines) {
            prop_assert_eq!(src.len(), out.code.len());
        }
    }

    /// A string literal with random escaped content never leaks its body
    /// into `code`, and the collected content is the raw escaped text.
    #[test]
    fn escaped_strings_tokenize(
        body in proptest::collection::vec(0usize..4, 0..32),
    ) {
        // Build a valid escaped string body out of \" \\ a and spaces.
        let content: String = body
            .iter()
            .map(|&i| ["\\\"", "\\\\", "a", " "][i])
            .collect();
        let src = format!("let s = \"{content}\"; after();");
        let lexed = lex(src.as_bytes());
        let line = &lexed.lines[0];
        prop_assert!(line.code.contains("after();"));
        prop_assert_eq!(line.strings.len(), 1);
        let (off, collected) = &line.strings[0];
        prop_assert_eq!(collected, &content);
        // The code buffer blanks exactly the literal's body to spaces.
        let span = &line.code[*off..*off + content.len()];
        prop_assert!(span.bytes().all(|b| b == b' '));
    }

    /// Block comments of arbitrary nesting depth swallow everything up to
    /// the matching closer; code resumes after it.
    #[test]
    fn nested_comments_tokenize(depth in 1usize..12) {
        let open = "/*".repeat(depth);
        let close = "*/".repeat(depth);
        let src = format!("before(); {open} hidden.unwrap() {close} after();");
        let lexed = lex(src.as_bytes());
        let line = &lexed.lines[0];
        prop_assert!(line.code.contains("before();"));
        prop_assert!(line.code.contains("after();"));
        prop_assert!(!line.code.contains("hidden"));
        prop_assert!(line.comment.contains("hidden.unwrap()"));
    }

    /// Raw strings with arbitrary hash depth terminate exactly at the
    /// matching closer, even when the body holds quotes, slashes, and
    /// shorter hash runs.
    #[test]
    fn raw_strings_tokenize(hashes in 1usize..6) {
        let h = "#".repeat(hashes);
        let shorter = "#".repeat(hashes - 1);
        let body = format!("quote \" comment // half-close \"{shorter}");
        let src = format!("let s = r{h}\"{body}\"{h}; after();");
        let lexed = lex(src.as_bytes());
        let line = &lexed.lines[0];
        prop_assert!(line.code.contains("after();"));
        prop_assert!(line.comment.is_empty());
        prop_assert_eq!(line.strings.len(), 1);
        prop_assert_eq!(&line.strings[0].1, &body);
    }
}
