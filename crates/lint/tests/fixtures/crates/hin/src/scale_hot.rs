//! Seeded violation: a per-object `String` allocation inside a
//! `scale-hot` span (the million-object appends must intern into the
//! arena, not materialize owned names one by one).

// lint: region(scale-hot)
fn append_names(names: &[&str], arena: &mut Vec<String>) {
    for name in names {
        arena.push(name.to_string());
    }
}
// lint: end-region
