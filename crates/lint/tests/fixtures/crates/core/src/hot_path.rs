// lint: region(hot-path)
pub fn kernel(xs: &mut [u64]) -> u64 {
    let extra = vec![0u64; 4];
    xs.iter().chain(extra.iter()).sum()
}
// lint: end-region
