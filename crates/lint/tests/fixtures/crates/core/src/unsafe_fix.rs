pub fn touch(p: *const u8) -> u8 {
    unsafe { *p }
}
