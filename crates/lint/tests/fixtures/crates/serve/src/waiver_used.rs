pub fn f(x: Option<u32>) -> u32 {
    // lint: allow(no-panic-in-serve) -- fixture: demonstrates a used waiver
    x.unwrap()
}
