pub fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}
