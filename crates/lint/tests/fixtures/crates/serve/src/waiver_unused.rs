// lint: allow(no-panic-in-serve) -- fixture: nothing fires below
pub fn f(x: u32) -> u32 {
    x
}
