pub fn keys(push: impl FnMut(&str)) {
    render(push)
}

fn render(mut push: impl FnMut(&str)) {
    // lint: region(metrics-schema)
    push("bogus");
    // lint: end-region
}
