use std::path::Path;

pub fn dump(path: &Path, body: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, body)
}
