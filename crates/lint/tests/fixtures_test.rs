//! The seeded-violation corpus: every rule has a fixture that plants
//! exactly one violation, and the driver must report it at the exact
//! file:line — plus one fixture per waiver behavior (used,
//! unused-is-error, missing-reason-is-error). The workspace walk skips
//! `fixtures/` directories, so these files only ever fail the lint here.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// `(path, line, rule)` of every finding under the fixtures tree.
fn all_findings() -> Vec<(String, usize, String)> {
    let root = fixtures_root();
    let files = genclus_lint::collect_rs_files(&root).expect("walk fixtures");
    assert_eq!(files.len(), 9, "fixture corpus drifted: {files:?}");
    genclus_lint::run(&root, &files)
        .expect("lint fixtures")
        .into_iter()
        .map(|f| (f.path.clone(), f.diag.line, f.diag.rule.to_string()))
        .collect()
}

#[track_caller]
fn assert_finding(findings: &[(String, usize, String)], path: &str, line: usize, rule: &str) {
    assert!(
        findings
            .iter()
            .any(|(p, l, r)| p == path && *l == line && r == rule),
        "expected {path}:{line} [{rule}] in {findings:#?}"
    );
}

#[test]
fn each_rule_reports_its_seeded_violation_at_the_exact_line() {
    let findings = all_findings();
    assert_finding(
        &findings,
        "crates/core/src/unsafe_fix.rs",
        2,
        "unsafe-needs-safety",
    );
    assert_finding(
        &findings,
        "crates/core/src/hot_path.rs",
        3,
        "hot-path-alloc",
    );
    assert_finding(
        &findings,
        "crates/serve/src/bin/dump.rs",
        4,
        "durable-io-containment",
    );
    assert_finding(
        &findings,
        "crates/serve/src/no_panic.rs",
        2,
        "no-panic-in-serve",
    );
    assert_finding(
        &findings,
        "crates/serve/src/metrics.rs",
        7,
        "metrics-key-order",
    );
    assert_finding(
        &findings,
        "crates/hin/src/scale_hot.rs",
        8,
        "no-per-object-alloc",
    );
}

#[test]
fn waiver_behaviors() {
    let findings = all_findings();
    // Used waiver: the file contributes nothing at all.
    assert!(
        !findings
            .iter()
            .any(|(p, _, _)| p.ends_with("waiver_used.rs")),
        "a used waiver must suppress its finding: {findings:#?}"
    );
    // Unused waiver: an error at the waiver's own line.
    assert_finding(
        &findings,
        "crates/serve/src/waiver_unused.rs",
        1,
        "lint-directive",
    );
    // Missing reason: the directive errors AND the finding still fires.
    assert_finding(
        &findings,
        "crates/serve/src/waiver_noreason.rs",
        2,
        "lint-directive",
    );
    assert_finding(
        &findings,
        "crates/serve/src/waiver_noreason.rs",
        3,
        "no-panic-in-serve",
    );
}

// The binary tests run from the fixtures root with relative arguments:
// path-scoped rules key on workspace-relative paths, and the fixtures'
// absolute paths would both contain `/tests/` (disabling the rules that
// skip test trees) and not start with `crates/serve/src/`.

#[test]
fn binary_exits_nonzero_with_file_line_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_genclus-lint"))
        .current_dir(fixtures_root())
        .arg("crates")
        .output()
        .expect("run genclus-lint");
    assert_eq!(out.status.code(), Some(1), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "crates/core/src/unsafe_fix.rs:2:5: [unsafe-needs-safety]",
        "crates/core/src/hot_path.rs:3:17: [hot-path-alloc]",
        "crates/serve/src/bin/dump.rs:4:10: [durable-io-containment]",
        "crates/serve/src/no_panic.rs:2:6: [no-panic-in-serve]",
        "crates/serve/src/metrics.rs:7:10: [metrics-key-order]",
        "crates/hin/src/scale_hot.rs:8:24: [no-per-object-alloc]",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?} in:\n{stdout}");
    }
}

#[test]
fn binary_exits_zero_on_clean_input() {
    let out = Command::new(env!("CARGO_BIN_EXE_genclus-lint"))
        .current_dir(fixtures_root())
        .arg("crates/serve/src/waiver_used.rs")
        .output()
        .expect("run genclus-lint");
    assert_eq!(out.status.code(), Some(0), "stdout: {:?}", out.stdout);
}
